// Dynamic geometry acceptance tests (DESIGN.md §12): the GeometryRelation
// admission lattice, the DaVinciSketch::Resize rebuild/replay contract
// (bit-identity when the EF does not carry, bounded error on all nine
// tasks when it does), seal-boundary resize in EpochManager, the
// non-blocking shard-by-shard ConcurrentDaVinci resize, the continuous
// AutotuneController policy, and the ResizeHealth provenance record.
//
// The accuracy legs reuse the accuracy_regression_test fixture idiom
// (seeded Zipf trace, GroundTruth, pinned bounds ~2x the error observed
// at pin time — loosened further here because a resize deliberately
// forfeits the EF residue when the tower cannot carry over).

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_annotations.h"
#include "core/autotune.h"
#include "core/concurrent_davinci.h"
#include "core/davinci_sketch.h"
#include "core/epoch_manager.h"
#include "metrics/metrics.h"
#include "obs/health.h"
#include "test_seed.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

namespace davinci {
namespace {

using GeometryRelation = DaVinciConfig::GeometryRelation;

constexpr size_t kBytes = 256 * 1024;
constexpr uint64_t kSketchSeed = 7;  // fixed: only the trace seed varies
constexpr size_t kPackets = 120000;
constexpr size_t kFlows = 10000;

std::string SaveBytes(const DaVinciSketch& sketch) {
  std::ostringstream out;
  sketch.Save(out);
  return out.str();
}

uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

// A strictly-growing geometry whose EF tower is identical to `from`'s —
// the autotune grow path, and the precondition for EfCarriesOver.
DaVinciConfig GrownKeepingEf(const DaVinciConfig& from) {
  DaVinciConfig to = from;
  to.fp_buckets = from.fp_buckets * 2;
  to.ifp_buckets_per_row = from.ifp_buckets_per_row * 2;
  return to;
}

// ---------------------------------------------------------------------
// GeometryRelation: the one admission gate (config.h).
// ---------------------------------------------------------------------

TEST(GeometryCompatibleTest, IdenticalIgnoresRuntimeTuningKnobs) {
  DaVinciConfig a = DaVinciConfig::FromMemory(64 * 1024, 7);
  DaVinciConfig b = a;
  b.decode_threads = 4;
  b.batch_query_min_keys = 1;
  b.batch_prefetch_distance = 0;
  EXPECT_EQ(DaVinciConfig::GeometryCompatible(a, b),
            GeometryRelation::kIdentical);
  EXPECT_EQ(DaVinciConfig::GeometryCompatible(a, a),
            GeometryRelation::kIdentical);
}

TEST(GeometryCompatibleTest, SameSeedDifferentShapeIsResizable) {
  DaVinciConfig a = DaVinciConfig::FromMemory(64 * 1024, 7);
  EXPECT_EQ(DaVinciConfig::GeometryCompatible(
                a, DaVinciConfig::FromMemory(128 * 1024, 7)),
            GeometryRelation::kResizable);
  EXPECT_EQ(DaVinciConfig::GeometryCompatible(
                a, DaVinciConfig::FromMemorySplit(64 * 1024, 0.40, 0.40, 7)),
            GeometryRelation::kResizable);
  DaVinciConfig threshold_only = a;
  threshold_only.promotion_threshold *= 2;
  EXPECT_EQ(DaVinciConfig::GeometryCompatible(a, threshold_only),
            GeometryRelation::kResizable);
}

TEST(GeometryCompatibleTest, SeedMismatchOrInvalidIsIncompatible) {
  DaVinciConfig a = DaVinciConfig::FromMemory(64 * 1024, 7);
  EXPECT_EQ(DaVinciConfig::GeometryCompatible(
                a, DaVinciConfig::FromMemory(64 * 1024, 8)),
            GeometryRelation::kIncompatible);
  DaVinciConfig invalid = a;
  invalid.fp_buckets = 0;  // fails DaVinciConfig::Valid()
  EXPECT_EQ(DaVinciConfig::GeometryCompatible(a, invalid),
            GeometryRelation::kIncompatible);
  EXPECT_EQ(DaVinciConfig::GeometryCompatible(invalid, a),
            GeometryRelation::kIncompatible);
}

TEST(GeometryCompatibleTest, EfCarriesOverRequiresSameTowerAndNonLowerT) {
  DaVinciConfig from = DaVinciConfig::FromMemory(kBytes, kSketchSeed);
  EXPECT_TRUE(DaVinciSketch::EfCarriesOver(from, GrownKeepingEf(from)));

  DaVinciConfig raised_t = GrownKeepingEf(from);
  raised_t.promotion_threshold = from.promotion_threshold * 2;
  EXPECT_TRUE(DaVinciSketch::EfCarriesOver(from, raised_t));

  DaVinciConfig lowered_t = GrownKeepingEf(from);
  lowered_t.promotion_threshold = from.promotion_threshold / 2;
  EXPECT_FALSE(DaVinciSketch::EfCarriesOver(from, lowered_t));

  DaVinciConfig other_tower = GrownKeepingEf(from);
  other_tower.ef_bytes = from.ef_bytes * 2;
  EXPECT_FALSE(DaVinciSketch::EfCarriesOver(from, other_tower));

  DaVinciConfig other_levels = GrownKeepingEf(from);
  other_levels.ef_level_bits = {4, 8, 16};
  EXPECT_FALSE(DaVinciSketch::EfCarriesOver(from, other_levels));
}

// ---------------------------------------------------------------------
// DaVinciSketch::Resize: the rebuild/replay contract.
// ---------------------------------------------------------------------

TEST(SketchResizeTest, NoCarryResizeBitIdenticalToFreshReplay) {
  uint64_t seed = testing::TestSeed(2026);
  DAVINCI_ANNOUNCE_SEED(seed);
  Trace trace = BuildSkewedTrace("rsz", 40000, 4000, 1.0, seed);

  DaVinciConfig from = DaVinciConfig::FromMemory(64 * 1024, kSketchSeed);
  DaVinciConfig to = DaVinciConfig::FromMemory(128 * 1024, kSketchSeed);
  ASSERT_FALSE(DaVinciSketch::EfCarriesOver(from, to));  // ef_bytes differ

  DaVinciSketch sketch(from);
  for (uint32_t key : trace.keys) sketch.Insert(key, 1);

  // The contract: a no-carry resize is bit-identical to a fresh sketch of
  // the new geometry fed SurvivingFlows() in replay order.
  std::vector<std::pair<uint32_t, int64_t>> surviving =
      sketch.SurvivingFlows();
  ASSERT_FALSE(surviving.empty());
  ASSERT_TRUE(sketch.Resize(to));
  sketch.CheckInvariants(InvariantMode::kAdditive);

  DaVinciSketch fresh(to);
  for (const auto& [key, count] : surviving) fresh.Insert(key, count);
  EXPECT_EQ(SaveBytes(sketch), SaveBytes(fresh));
}

TEST(SketchResizeTest, IdenticalResizePreservesDigestAndAdoptsKnobs) {
  DaVinciSketch sketch(64 * 1024, kSketchSeed);
  for (uint32_t key = 0; key < 3000; ++key) sketch.Insert(key, 1 + key % 40);
  uint64_t digest_before = Fnv1a64(SaveBytes(sketch));

  DaVinciConfig same = sketch.config();
  same.decode_threads = 2;
  same.batch_query_min_keys = 64;
  ASSERT_TRUE(sketch.Resize(same));

  // Digest-preserving no-op: the serialized image cannot change, only the
  // runtime tuning knobs are adopted.
  EXPECT_EQ(Fnv1a64(SaveBytes(sketch)), digest_before);
  EXPECT_EQ(sketch.config().decode_threads, 2u);
  EXPECT_EQ(sketch.config().batch_query_min_keys, 64u);
}

TEST(SketchResizeTest, IncompatibleResizeRejectedUntouched) {
  DaVinciSketch sketch(64 * 1024, kSketchSeed);
  for (uint32_t key = 0; key < 3000; ++key) sketch.Insert(key, 1 + key % 40);
  uint64_t digest_before = Fnv1a64(SaveBytes(sketch));

  EXPECT_FALSE(
      sketch.Resize(DaVinciConfig::FromMemory(128 * 1024, kSketchSeed + 1)));
  DaVinciConfig invalid = sketch.config();
  invalid.ifp_rows = 0;
  EXPECT_FALSE(sketch.Resize(invalid));
  EXPECT_EQ(Fnv1a64(SaveBytes(sketch)), digest_before);
}

TEST(SketchResizeTest, ShrinkResizeKeepsInvariantsAndServesQueries) {
  uint64_t seed = testing::TestSeed(2027);
  DAVINCI_ANNOUNCE_SEED(seed);
  Trace trace = BuildSkewedTrace("shrink", 40000, 4000, 1.0, seed);
  DaVinciSketch sketch(kBytes, kSketchSeed);
  for (uint32_t key : trace.keys) sketch.Insert(key, 1);

  ASSERT_TRUE(sketch.Resize(DaVinciConfig::FromMemory(64 * 1024, kSketchSeed)));
  sketch.CheckInvariants(InvariantMode::kAdditive);

  // A hot flow survives a shrink with at worst the EF residue forfeited.
  GroundTruth truth(trace.keys);
  auto heavy = truth.HeavyHitters(truth.total() / 200);
  ASSERT_FALSE(heavy.empty());
  for (const auto& [key, f] : heavy) {
    EXPECT_GE(sketch.Query(key), f - sketch.config().promotion_threshold);
    EXPECT_LE(sketch.Query(key), f);
  }
}

// ---------------------------------------------------------------------
// EF-carry resize: all nine tasks stay within (loosened) accuracy bounds
// against ground truth, and linear ops with fresh sketches of the new
// geometry are admitted after the migration.
// ---------------------------------------------------------------------

struct CarryFixture {
  uint64_t seed;
  DaVinciConfig to;
  Trace full, a, b, da, db;
  GroundTruth truth, ta, tb, tda, tdb;
  // r_* were built at the old geometry and resized; f_* were born at the
  // new geometry (the post-resize merge peers).
  DaVinciSketch r_full, r_a, r_da;
  DaVinciSketch f_b, f_db;
};

DaVinciSketch BuildAt(const DaVinciConfig& config,
                      const std::vector<uint32_t>& keys) {
  DaVinciSketch sketch(config);
  for (uint32_t key : keys) sketch.Insert(key, 1);
  return sketch;
}

DaVinciSketch BuildResized(const DaVinciConfig& from, const DaVinciConfig& to,
                           const std::vector<uint32_t>& keys) {
  DaVinciSketch sketch = BuildAt(from, keys);
  DAVINCI_CHECK(sketch.Resize(to));
  return sketch;
}

const CarryFixture& CF() {
  static const CarryFixture* fixture = [] {
    uint64_t seed = testing::TestSeed(2025);
    DaVinciConfig from = DaVinciConfig::FromMemory(kBytes, kSketchSeed);
    DaVinciConfig to = GrownKeepingEf(from);
    DAVINCI_CHECK(DaVinciSketch::EfCarriesOver(from, to));
    Trace full = BuildSkewedTrace("carry", kPackets, kFlows, 1.0, seed);
    size_t n = full.keys.size();
    Trace a = Slice(full, 0, n / 2, "a");
    Trace b = Slice(full, n / 2, n, "b");
    Trace da = Slice(full, 0, 2 * n / 3, "da");
    Trace db = Slice(full, n / 3, n, "db");
    auto* f = new CarryFixture{seed,
                               to,
                               full,
                               a,
                               b,
                               da,
                               db,
                               GroundTruth(full.keys),
                               GroundTruth(a.keys),
                               GroundTruth(b.keys),
                               GroundTruth(da.keys),
                               GroundTruth(db.keys),
                               BuildResized(from, to, full.keys),
                               BuildResized(from, to, a.keys),
                               BuildResized(from, to, da.keys),
                               BuildAt(to, b.keys),
                               BuildAt(to, db.keys)};
    return f;
  }();
  return *fixture;
}

template <typename QueryFn>
double FrequencyAre(const GroundTruth& truth, QueryFn&& query) {
  std::vector<Estimate> observations;
  observations.reserve(truth.frequencies().size());
  for (const auto& [key, f] : truth.frequencies()) {
    observations.push_back({f, query(key)});
  }
  return AverageRelativeError(observations);
}

double HeavySetF1(const std::vector<std::pair<uint32_t, int64_t>>& reported,
                  const std::vector<std::pair<uint32_t, int64_t>>& actual) {
  std::unordered_map<uint32_t, int64_t> actual_map(actual.begin(),
                                                   actual.end());
  size_t correct = 0;
  for (const auto& [key, est] : reported) {
    if (actual_map.count(key)) ++correct;
  }
  return F1Score(correct, reported.size(), actual.size());
}

#define DAVINCI_GATE(metric, bound)                                   \
  do {                                                                \
    DAVINCI_ANNOUNCE_SEED(CF().seed);                                 \
    double observed = (metric);                                       \
    std::printf("resize-gate %s: %.6f (bound %.6f)\n", #metric,       \
                observed, static_cast<double>(bound));                \
    EXPECT_LE(observed, bound);                                       \
  } while (0)

TEST(CarryResizeTest, StateIsAdditiveAndGeometryAdopted) {
  CF().r_full.CheckInvariants(InvariantMode::kAdditive);
  EXPECT_EQ(DaVinciConfig::GeometryCompatible(CF().r_full.config(), CF().to),
            GeometryRelation::kIdentical);
}

TEST(CarryResizeTest, FrequencyAre) {
  DAVINCI_GATE(FrequencyAre(CF().truth,
                            [](uint32_t key) { return CF().r_full.Query(key); }),
               0.04);
}

TEST(CarryResizeTest, HeavyHitterF1) {
  int64_t threshold = CF().truth.total() / 1000;
  auto actual = CF().truth.HeavyHitters(threshold);
  ASSERT_FALSE(actual.empty());
  DAVINCI_GATE(
      1.0 - HeavySetF1(CF().r_full.HeavyHitters(threshold), actual), 0.08);
}

TEST(CarryResizeTest, HeavyChangerF1) {
  int64_t delta = CF().truth.total() / 2000;
  GroundTruth diff = GroundTruth::Difference(CF().ta, CF().tb);
  std::vector<std::pair<uint32_t, int64_t>> actual;
  for (const auto& [key, change] : diff.frequencies()) {
    if (std::llabs(change) > delta) actual.emplace_back(key, change);
  }
  ASSERT_FALSE(actual.empty());
  DAVINCI_GATE(
      1.0 - HeavySetF1(CF().r_a.HeavyChangers(CF().f_b, delta), actual), 0.10);
}

TEST(CarryResizeTest, CardinalityRe) {
  DAVINCI_GATE(RelativeError(static_cast<double>(CF().truth.cardinality()),
                             CF().r_full.EstimateCardinality()),
               0.08);
}

TEST(CarryResizeTest, DistributionWmre) {
  DAVINCI_GATE(WeightedMeanRelativeError(CF().truth.Distribution(),
                                         CF().r_full.Distribution()),
               0.10);
}

TEST(CarryResizeTest, EntropyRe) {
  DAVINCI_GATE(
      RelativeError(CF().truth.Entropy(), CF().r_full.EstimateEntropy()),
      0.08);
}

TEST(CarryResizeTest, UnionAre) {
  // A resized sketch must merge with a fresh sketch born at the new
  // geometry — kIdentical admission after the migration.
  DaVinciSketch merged = CF().r_a;
  merged.Merge(CF().f_b);
  DAVINCI_GATE(FrequencyAre(CF().truth,
                            [&](uint32_t key) { return merged.Query(key); }),
               0.05);
}

TEST(CarryResizeTest, DifferenceAre) {
  DaVinciSketch diff_sketch = CF().r_da;
  diff_sketch.Subtract(CF().f_db);
  GroundTruth diff = GroundTruth::Difference(CF().tda, CF().tdb);
  DAVINCI_GATE(FrequencyAre(
                   diff, [&](uint32_t key) { return diff_sketch.Query(key); }),
               0.15);
}

TEST(CarryResizeTest, InnerJoinRe) {
  double truth = GroundTruth::InnerJoin(CF().tda, CF().tdb);
  DAVINCI_GATE(
      RelativeError(truth, DaVinciSketch::InnerProduct(CF().r_da, CF().f_db)),
      0.15);
}

// ---------------------------------------------------------------------
// EpochManager: a scheduled resize applies at the Advance() seal boundary.
// ---------------------------------------------------------------------

TEST(EpochResizeTest, ScheduleAppliesAtSealBoundary) {
  DaVinciConfig initial = DaVinciConfig::FromMemory(64 * 1024, kSketchSeed);
  DaVinciConfig bigger = DaVinciConfig::FromMemory(128 * 1024, kSketchSeed);
  EpochManager window(3, initial);

  for (int epoch = 0; epoch < 2; ++epoch) {
    window.Insert(99, 500);
    for (uint32_t key = 0; key < 1000; ++key) window.Insert(key + 1000, 1);
    window.Advance();
  }

  ASSERT_TRUE(window.ScheduleResize(bigger));
  EXPECT_TRUE(window.resize_pending());
  // Nothing changes until the seal: the live geometry is still the old one.
  EXPECT_TRUE(window.epoch_config().GeometryEquals(initial));
  EXPECT_EQ(window.resizes_applied(), 0u);

  window.Insert(99, 500);
  window.Advance();  // the swap point: seals epoch 3, rebuilds the window

  EXPECT_FALSE(window.resize_pending());
  EXPECT_EQ(window.resizes_applied(), 1u);
  EXPECT_TRUE(window.epoch_config().GeometryEquals(bigger));
  window.CheckInvariants(InvariantMode::kAdditive);

  // W=3 retains epochs 2 and 3 (both rebuilt) plus the fresh live epoch;
  // the hot flow's count survives the rebuild up to the EF residue
  // (<= T per epoch, forfeited because 64K->128K changes the tower).
  int64_t estimate = window.Query(99);
  EXPECT_GE(estimate, 1000 - 2 * initial.promotion_threshold);
  EXPECT_LE(estimate, 1010);

  DaVinciSketch merged = window.MergedWindow();
  merged.CheckInvariants(InvariantMode::kAdditive);
  EXPECT_TRUE(merged.config().GeometryEquals(bigger));
}

TEST(EpochResizeTest, IncompatibleScheduleRejected) {
  EpochManager window(2, DaVinciConfig::FromMemory(64 * 1024, kSketchSeed));
  EXPECT_FALSE(window.ScheduleResize(
      DaVinciConfig::FromMemory(64 * 1024, kSketchSeed + 1)));
  EXPECT_FALSE(window.resize_pending());
  window.Advance();
  EXPECT_EQ(window.resizes_applied(), 0u);
}

// ---------------------------------------------------------------------
// ConcurrentDaVinci: shard-by-shard resize never blocks the lock-free
// read path (the PR's acceptance criterion), and provenance is recorded.
// ---------------------------------------------------------------------

TEST(ConcurrentResizeTest, ReadsCompleteWhileResizeBlockedOnHostageShard) {
  using namespace std::chrono_literals;
  ConcurrentDaVinci sketch(4, kBytes, kSketchSeed);
  for (uint32_t key = 0; key < 20000; ++key) sketch.Insert(key, 1 + key % 8);
  sketch.FlushViews();

  // Hold shard 0's write lock hostage: the shard-by-shard resize must park
  // on it while readers keep landing on published views untouched.
  ReleasableMutexLock hostage(&sketch.ShardMutexForTesting(0));

  DaVinciConfig bigger = DaVinciConfig::FromMemory(128 * 1024, kSketchSeed);
  std::future<bool> resize = std::async(
      std::launch::async, [&] { return sketch.Resize(bigger); });

  std::future<void> reads = std::async(std::launch::async, [&] {
    for (int round = 0; round < 50; ++round) {
      for (uint32_t key = 0; key < 2000; ++key) {
        EXPECT_GE(sketch.Query(key), 0);
      }
      EXPECT_GT(sketch.EstimateCardinality(), 0.0);
      (void)sketch.HeavyHitters(100);
    }
  });

  // Reads finish while the resize is still parked on the hostage shard.
  ASSERT_EQ(reads.wait_for(10s), std::future_status::ready);
  EXPECT_EQ(resize.wait_for(100ms), std::future_status::timeout);

  hostage.Release();
  ASSERT_EQ(resize.wait_for(10s), std::future_status::ready);
  EXPECT_TRUE(resize.get());
  EXPECT_EQ(sketch.resizes_applied(), 1u);
  EXPECT_TRUE(sketch.ShardConfig().GeometryEquals(bigger));
  sketch.CheckInvariants(InvariantMode::kAdditive);
}

TEST(ConcurrentResizeTest, ResizeUnderConcurrentReadersAndWriter) {
  ConcurrentDaVinci sketch(4, kBytes, kSketchSeed);
  sketch.Insert(42, 100000);
  sketch.FlushViews();

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint32_t key = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      sketch.Insert(key++ % 50000, 1);
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EXPECT_GE(sketch.Query(42), 0);
        (void)sketch.EstimateCardinality();
      }
    });
  }

  DaVinciConfig bigger = DaVinciConfig::FromMemory(128 * 1024, kSketchSeed);
  EXPECT_TRUE(sketch.Resize(bigger, obs::ResizeHealth::kAutotune));

  stop.store(true, std::memory_order_relaxed);
  writer.join();
  for (std::thread& reader : readers) reader.join();

  sketch.FlushViews();
  sketch.CheckInvariants(InvariantMode::kAdditive);
  // The pre-resize hot flow survived the migration (modulo EF residue).
  EXPECT_GE(sketch.Query(42), 100000 - sketch.ShardConfig().promotion_threshold);
}

TEST(ConcurrentResizeTest, ProvenanceCountersAndStats) {
  ConcurrentDaVinci sketch(2, 64 * 1024, kSketchSeed);
  for (uint32_t key = 0; key < 5000; ++key) sketch.Insert(key, 1);

  // Incompatible geometry: rejected without touching the shards.
  EXPECT_FALSE(
      sketch.Resize(DaVinciConfig::FromMemory(64 * 1024, kSketchSeed + 1)));
  size_t before = sketch.MemoryBytes();
  EXPECT_TRUE(sketch.Resize(DaVinciConfig::FromMemory(64 * 1024, kSketchSeed),
                            obs::ResizeHealth::kAutotune));

  obs::ResizeHealth resize = sketch.ResizeProvenance();
  EXPECT_EQ(resize.applied, 1u);
  EXPECT_EQ(resize.rejected, 1u);
  EXPECT_EQ(resize.bytes_before, before);
  EXPECT_EQ(resize.bytes_after, sketch.MemoryBytes());
  EXPECT_EQ(resize.last_trigger, obs::ResizeHealth::kAutotune);

  obs::HealthSnapshot health;
  sketch.CollectStats(&health);
  EXPECT_EQ(health.resize.applied, 1u);
  EXPECT_EQ(health.resize.rejected, 1u);
  EXPECT_EQ(health.resize.last_trigger, obs::ResizeHealth::kAutotune);
}

// ---------------------------------------------------------------------
// AutotuneController: deterministic policy over fabricated snapshots.
// ---------------------------------------------------------------------

// Fabricates a snapshot with the given structural pressures: FP occupancy
// and flagged fraction, worst EF level saturation, IFP bucket load.
obs::HealthSnapshot MakeSnapshot(double occupancy, double flagged,
                                 double ef_saturation, double ifp_load) {
  obs::HealthSnapshot health;
  health.fp.buckets = 1000;
  health.fp.slots = 8;
  health.fp.live_slots = static_cast<size_t>(occupancy * 8000);
  health.fp.flagged_buckets = static_cast<size_t>(flagged * 1000);
  obs::EfLevelHealth level;
  level.width = 1000;
  level.bits = 8;
  level.cap = 255;
  level.saturated = static_cast<size_t>(ef_saturation * 1000);
  health.ef.levels.push_back(level);
  health.ifp.rows = 4;
  health.ifp.width = 1000;
  health.ifp.empty_buckets = static_cast<size_t>((1.0 - ifp_load) * 4000);
  return health;
}

TEST(AutotuneControllerTest, QuietWhenPressuresAreBalanced) {
  DaVinciConfig initial = DaVinciConfig::FromMemory(kBytes, kSketchSeed);
  AutotuneController controller(initial, kBytes);
  // All three parts near 0.3: imbalance under the hysteresis, T untouched.
  EXPECT_FALSE(controller.Observe(MakeSnapshot(0.5, 0.0, 0.30, 0.35)));
  EXPECT_FALSE(controller.Observe(MakeSnapshot(0.5, 0.0, 0.30, 0.35)));
  EXPECT_EQ(controller.proposals(), 0u);
  EXPECT_TRUE(controller.current().GeometryEquals(initial));
}

TEST(AutotuneControllerTest, FpPressureGrowsFpWithinStepBound) {
  DaVinciConfig initial = DaVinciConfig::FromMemory(kBytes, kSketchSeed);
  AutotuneController controller(initial, kBytes);
  // FP saturated and evicting, EF and IFP nearly idle.
  auto proposal = controller.Observe(MakeSnapshot(1.0, 1.0, 0.05, 0.10));
  ASSERT_TRUE(proposal.has_value());
  EXPECT_EQ(controller.proposals(), 1u);
  EXPECT_GT(proposal->fp_buckets, initial.fp_buckets);
  EXPECT_LT(proposal->ef_bytes, initial.ef_bytes);  // budget came from the EF
  // Step bound: the FP fraction moved at most max_step (0.10) past its
  // initial 0.25 share of the budget.
  EXPECT_LE(proposal->FpBytes(),
            static_cast<size_t>(0.36 * static_cast<double>(kBytes)));
  // Same byte budget, same seed: the proposal is reachable via Resize.
  EXPECT_LE(proposal->TotalBytes(), kBytes + kBytes / 20);
  EXPECT_EQ(DaVinciConfig::GeometryCompatible(initial, *proposal),
            GeometryRelation::kResizable);
  EXPECT_TRUE(controller.current().GeometryEquals(*proposal));
}

TEST(AutotuneControllerTest, CooldownSilencesFollowupProposals) {
  DaVinciConfig initial = DaVinciConfig::FromMemory(kBytes, kSketchSeed);
  AutotuneController controller(initial, kBytes);
  obs::HealthSnapshot pressured = MakeSnapshot(1.0, 1.0, 0.05, 0.10);
  ASSERT_TRUE(controller.Observe(pressured));
  // cooldown_epochs = 2: the next two observations stay quiet no matter
  // how lopsided the pressures are.
  EXPECT_FALSE(controller.Observe(pressured));
  EXPECT_FALSE(controller.Observe(pressured));
  EXPECT_TRUE(controller.Observe(pressured).has_value());
  EXPECT_EQ(controller.proposals(), 2u);
}

TEST(AutotuneControllerTest, ThresholdRecalibrationIsBoundedPowerOfTwo) {
  DaVinciConfig initial = DaVinciConfig::FromMemory(kBytes, kSketchSeed);
  {
    // Loaded IFP: T doubles so more mass stays in the filter.
    AutotuneController controller(initial, kBytes);
    auto proposal = controller.Observe(MakeSnapshot(0.1, 0.0, 0.05, 0.90));
    ASSERT_TRUE(proposal.has_value());
    EXPECT_EQ(proposal->promotion_threshold, initial.promotion_threshold * 2);
  }
  {
    // Saturated EF with a quiet IFP: T halves so mass stops piling into
    // pinned counters.
    AutotuneController controller(initial, kBytes);
    auto proposal = controller.Observe(MakeSnapshot(0.5, 0.0, 0.90, 0.05));
    ASSERT_TRUE(proposal.has_value());
    EXPECT_EQ(proposal->promotion_threshold, initial.promotion_threshold / 2);
  }
  {
    // The doubling is clamped at threshold_max.
    AutotuneControllerOptions options;
    options.threshold_max = initial.promotion_threshold;
    AutotuneController controller(initial, kBytes, options);
    auto proposal = controller.Observe(MakeSnapshot(0.1, 0.0, 0.05, 0.90));
    ASSERT_TRUE(proposal.has_value());  // the re-split still fires
    EXPECT_EQ(proposal->promotion_threshold, initial.promotion_threshold);
  }
}

TEST(AutotuneControllerTest, RevertToReconvergesWithLiveGeometry) {
  DaVinciConfig initial = DaVinciConfig::FromMemory(kBytes, kSketchSeed);
  AutotuneController controller(initial, kBytes);
  ASSERT_TRUE(controller.Observe(MakeSnapshot(1.0, 1.0, 0.05, 0.10)));
  EXPECT_FALSE(controller.current().GeometryEquals(initial));
  // The caller could not apply the proposal (e.g. quota denial): the
  // controller re-adopts what is actually live.
  controller.RevertTo(initial);
  EXPECT_TRUE(controller.current().GeometryEquals(initial));
}

TEST(AutotuneControllerTest, ProposalAppliesThroughResize) {
  uint64_t seed = testing::TestSeed(2028);
  DAVINCI_ANNOUNCE_SEED(seed);
  Trace trace = BuildSkewedTrace("tune", 40000, 4000, 1.0, seed);
  DaVinciSketch sketch(kBytes, kSketchSeed);
  for (uint32_t key : trace.keys) sketch.Insert(key, 1);

  AutotuneController controller(sketch.config(), kBytes);
  auto proposal = controller.Observe(MakeSnapshot(1.0, 1.0, 0.05, 0.10));
  ASSERT_TRUE(proposal.has_value());
  ASSERT_TRUE(sketch.Resize(*proposal));
  sketch.CheckInvariants(InvariantMode::kAdditive);
  EXPECT_TRUE(sketch.config().GeometryEquals(*proposal));
}

// ---------------------------------------------------------------------
// ResizeHealth provenance: shard aggregation and the JSON surface.
// ---------------------------------------------------------------------

TEST(ResizeHealthTest, AccumulateKeepsLatestSwapAndSumsCounters) {
  obs::HealthSnapshot a, b;
  a.resize.applied = 1;
  a.resize.rejected = 2;
  a.resize.bytes_before = 100;
  a.resize.bytes_after = 200;
  a.resize.last_trigger = obs::ResizeHealth::kAdmin;
  b.resize.applied = 3;
  b.resize.rejected = 1;
  b.resize.bytes_before = 300;
  b.resize.bytes_after = 400;
  b.resize.last_trigger = obs::ResizeHealth::kAutotune;
  a.Accumulate(b);
  EXPECT_EQ(a.resize.applied, 4u);
  EXPECT_EQ(a.resize.rejected, 3u);
  EXPECT_EQ(a.resize.bytes_before, 300u);
  EXPECT_EQ(a.resize.bytes_after, 400u);
  EXPECT_EQ(a.resize.last_trigger, obs::ResizeHealth::kAutotune);

  std::ostringstream json;
  a.WriteJson(json);
  EXPECT_NE(json.str().find("\"resize\":{\"applied\":4,\"rejected\":3"),
            std::string::npos);
}

}  // namespace
}  // namespace davinci
