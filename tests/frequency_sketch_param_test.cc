// Parameterized property tests run against every frequency sketch in the
// library, including DaVinci itself: shared invariants that any point-query
// summary must satisfy.

#include <functional>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "baselines/cm_sketch.h"
#include "baselines/coco_sketch.h"
#include "baselines/cold_filter.h"
#include "baselines/count_heap.h"
#include "baselines/count_sketch.h"
#include "baselines/cu_sketch.h"
#include "baselines/elastic_sketch.h"
#include "baselines/fcm_sketch.h"
#include "baselines/hashpipe.h"
#include "baselines/heavy_guardian.h"
#include "baselines/heavy_keeper.h"
#include "baselines/mrac.h"
#include "baselines/mv_sketch.h"
#include "baselines/nitro_sketch.h"
#include "baselines/space_saving.h"
#include "baselines/sketch_interface.h"
#include "baselines/tower_sketch.h"
#include "baselines/univmon.h"
#include "baselines/waving_sketch.h"
#include "core/davinci_sketch.h"
#include "metrics/metrics.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

namespace davinci {
namespace {

struct SketchFactory {
  std::string name;
  std::function<std::unique_ptr<FrequencySketch>(size_t bytes, uint64_t seed)>
      make;
  // Sketches whose estimate never undershoots the true count.
  bool one_sided_overestimate = false;
  // Sketches able to track every flow of a skewed stream reasonably well.
  double max_are_200kb = 5.0;
};

std::vector<SketchFactory> AllFactories() {
  return {
      {"CM",
       [](size_t b, uint64_t s) { return std::make_unique<CmSketch>(b, 3, s); },
       true, 1.0},
      {"CU",
       [](size_t b, uint64_t s) { return std::make_unique<CuSketch>(b, 3, s); },
       true, 1.0},
      {"Count",
       [](size_t b, uint64_t s) {
         return std::make_unique<CountSketch>(b, 3, s);
       },
       false, 2.0},
      {"CountHeap",
       [](size_t b, uint64_t s) {
         return std::make_unique<CountHeap>(b, 3, s);
       },
       false, 2.0},
      {"Tower",
       [](size_t b, uint64_t s) {
         return std::make_unique<TowerSketch>(b, s);
       },
       false, 1.0},
      {"Elastic",
       [](size_t b, uint64_t s) {
         return std::make_unique<ElasticSketch>(b, s);
       },
       false, 1.0},
      {"FCM",
       [](size_t b, uint64_t s) { return std::make_unique<FcmSketch>(b, s); },
       false, 1.0},
      {"Coco",
       [](size_t b, uint64_t s) {
         return std::make_unique<CocoSketch>(b, 2, s);
       },
       false, 5.0},
      {"HashPipe",
       [](size_t b, uint64_t s) {
         return std::make_unique<HashPipe>(b, 6, s);
       },
       false, 5.0},
      {"UnivMon",
       [](size_t b, uint64_t s) {
         return std::make_unique<UnivMon>(b, 8, s);
       },
       false, 25.0},  // point queries come from one level's small sketch
      {"MRAC",
       [](size_t b, uint64_t s) { return std::make_unique<Mrac>(b, s); },
       true, 4.0},  // single-hash array: no min filter over rows
      {"SpaceSaving",
       [](size_t b, uint64_t s) {
         return std::make_unique<SpaceSaving>(b, s);
       },
       false, 5.0},  // evicted mice answer 0
      {"HeavyKeeper",
       [](size_t b, uint64_t s) {
         return std::make_unique<HeavyKeeper>(b, 2, s);
       },
       false, 5.0},
      {"Waving",
       [](size_t b, uint64_t s) {
         return std::make_unique<WavingSketch>(b, 8, s);
       },
       false, 5.0},
      {"HeavyGuardian",
       [](size_t b, uint64_t s) {
         return std::make_unique<HeavyGuardian>(b, s);
       },
       false, 5.0},
      {"MV",
       [](size_t b, uint64_t s) {
         return std::make_unique<MvSketch>(b, 4, s);
       },
       false, 5.0},
      {"ColdFilter",
       [](size_t b, uint64_t s) {
         return std::make_unique<ColdFilterCm>(b, 15, s);
       },
       true, 1.0},
      {"Nitro",
       [](size_t b, uint64_t s) {
         return std::make_unique<NitroSketch>(b, 5, 0.5, s);
       },
       false, 10.0},  // update sampling noise dominates mice
      {"DaVinci",
       [](size_t b, uint64_t s) {
         return std::make_unique<DaVinciSketch>(b, s);
       },
       false, 0.5},
      {"DaVinciNoSigns",
       [](size_t b, uint64_t s) {
         DaVinciConfig config = DaVinciConfig::FromMemory(b, s);
         config.use_sign_hash = false;
         return std::make_unique<DaVinciSketch>(config);
       },
       false, 0.5},
      {"DaVinciNoCrossVal",
       [](size_t b, uint64_t s) {
         DaVinciConfig config = DaVinciConfig::FromMemory(b, s);
         config.decode_cross_validation = false;
         return std::make_unique<DaVinciSketch>(config);
       },
       false, 0.5},
  };
}

class FrequencySketchParamTest
    : public ::testing::TestWithParam<SketchFactory> {};

TEST_P(FrequencySketchParamTest, MemoryWithinBudget) {
  auto sketch = GetParam().make(200 * 1024, 1);
  EXPECT_GT(sketch->MemoryBytes(), 100u * 1024);
  EXPECT_LE(sketch->MemoryBytes(), 220u * 1024);
}

TEST_P(FrequencySketchParamTest, EmptySketchQueriesNearZero) {
  auto sketch = GetParam().make(64 * 1024, 2);
  for (uint32_t key = 1; key < 100; ++key) {
    EXPECT_EQ(sketch->Query(key), 0) << GetParam().name;
  }
}

TEST_P(FrequencySketchParamTest, SingleHeavyKeyIsAccurate) {
  auto sketch = GetParam().make(128 * 1024, 3);
  for (int i = 0; i < 5000; ++i) sketch->Insert(42, 1);
  int64_t est = sketch->Query(42);
  EXPECT_NEAR(static_cast<double>(est), 5000.0, 5000.0 * 0.05)
      << GetParam().name;
}

TEST_P(FrequencySketchParamTest, DeterministicAcrossRuns) {
  Trace trace = BuildSkewedTrace("t", 20000, 2000, 1.0, 77);
  auto a = GetParam().make(64 * 1024, 5);
  auto b = GetParam().make(64 * 1024, 5);
  for (uint32_t key : trace.keys) {
    a->Insert(key, 1);
    b->Insert(key, 1);
  }
  for (uint32_t key : {trace.keys[0], trace.keys[7], trace.keys[123]}) {
    EXPECT_EQ(a->Query(key), b->Query(key)) << GetParam().name;
  }
}

TEST_P(FrequencySketchParamTest, OneSidedErrorWhereGuaranteed) {
  if (!GetParam().one_sided_overestimate) GTEST_SKIP();
  Trace trace = BuildSkewedTrace("t", 50000, 5000, 1.0, 31);
  auto sketch = GetParam().make(64 * 1024, 7);
  for (uint32_t key : trace.keys) sketch->Insert(key, 1);
  GroundTruth truth(trace.keys);
  for (const auto& [key, f] : truth.frequencies()) {
    ASSERT_GE(sketch->Query(key), f) << GetParam().name;
  }
}

TEST_P(FrequencySketchParamTest, SkewedTraceAreWithinBound) {
  Trace trace = BuildSkewedTrace("t", 200000, 20000, 1.05, 13);
  auto sketch = GetParam().make(200 * 1024, 11);
  for (uint32_t key : trace.keys) sketch->Insert(key, 1);
  GroundTruth truth(trace.keys);
  std::vector<Estimate> observations;
  for (const auto& [key, f] : truth.frequencies()) {
    observations.push_back({f, sketch->Query(key)});
  }
  EXPECT_LT(AverageRelativeError(observations), GetParam().max_are_200kb)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllSketches, FrequencySketchParamTest,
    ::testing::ValuesIn(AllFactories()),
    [](const ::testing::TestParamInfo<SketchFactory>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace davinci
