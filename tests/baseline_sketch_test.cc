// Behaviour specific to individual baseline sketches: structure access,
// merges, one-sidedness and heavy-hitter enumeration.

#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

#include "baselines/cm_sketch.h"
#include "baselines/coco_sketch.h"
#include "baselines/count_heap.h"
#include "baselines/count_sketch.h"
#include "baselines/cu_sketch.h"
#include "baselines/elastic_sketch.h"
#include "baselines/fcm_sketch.h"
#include "baselines/hashpipe.h"
#include "baselines/tower_sketch.h"
#include "baselines/univmon.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

namespace davinci {
namespace {

Trace SkewedTestTrace(size_t packets = 100000, uint64_t seed = 21) {
  return BuildSkewedTrace("t", packets, packets / 10, 1.1, seed);
}

// ---------- CM ----------

TEST(CmSketchTest, LinearityOfMergeAndSubtract) {
  CmSketch a(8192, 3, 9), b(8192, 3, 9);
  a.Insert(1, 10);
  b.Insert(1, 4);
  b.Insert(2, 7);
  CmSketch merged = a;
  merged.Merge(b);
  EXPECT_EQ(merged.Query(1), 14);
  merged.Subtract(b);
  EXPECT_EQ(merged.Query(1), 10);
  EXPECT_EQ(merged.Query(2), 0);
}

TEST(CmSketchTest, RowValuesSumToStream) {
  CmSketch sketch(8192, 3, 9);
  sketch.Insert(5, 100);
  sketch.Insert(6, 50);
  auto row = sketch.RowValues(0);
  int64_t sum = 0;
  for (int64_t v : row) sum += v;
  EXPECT_EQ(sum, 150);
}

// ---------- CU ----------

TEST(CuSketchTest, TighterThanCmOnSkewedStream) {
  Trace trace = SkewedTestTrace();
  CmSketch cm(64 * 1024, 3, 5);
  CuSketch cu(64 * 1024, 3, 5);
  for (uint32_t key : trace.keys) {
    cm.Insert(key, 1);
    cu.Insert(key, 1);
  }
  GroundTruth truth(trace.keys);
  double cm_err = 0, cu_err = 0;
  for (const auto& [key, f] : truth.frequencies()) {
    cm_err += static_cast<double>(cm.Query(key) - f);
    cu_err += static_cast<double>(cu.Query(key) - f);
  }
  EXPECT_LT(cu_err, cm_err);
}

// ---------- Count ----------

TEST(CountSketchTest, RoughlyUnbiasedOnCollisions) {
  // Average signed error over many keys should be near zero.
  Trace trace = SkewedTestTrace(50000, 3);
  CountSketch sketch(16 * 1024, 5, 8);
  for (uint32_t key : trace.keys) sketch.Insert(key, 1);
  GroundTruth truth(trace.keys);
  double signed_error = 0;
  for (const auto& [key, f] : truth.frequencies()) {
    signed_error += static_cast<double>(sketch.Query(key) - f);
  }
  double mean_error = signed_error / truth.cardinality();
  EXPECT_LT(std::abs(mean_error), 3.0);
}

TEST(CountSketchTest, InnerProductEstimatesSelfJoin) {
  CountSketch a(32 * 1024, 5, 4), b(32 * 1024, 5, 4);
  // f = g: 100 copies of key 1, 50 of key 2 → f⊙g = 100² + 50² = 12500.
  a.Insert(1, 100);
  a.Insert(2, 50);
  b.Insert(1, 100);
  b.Insert(2, 50);
  EXPECT_NEAR(CountSketch::InnerProduct(a, b), 12500.0, 12500.0 * 0.05);
}

// ---------- CountHeap ----------

TEST(CountHeapTest, TracksTopFlows) {
  Trace trace = SkewedTestTrace();
  CountHeap heap(64 * 1024, 3, 6);
  for (uint32_t key : trace.keys) heap.Insert(key, 1);
  GroundTruth truth(trace.keys);
  int64_t threshold = trace.keys.size() / 1000;
  auto reported = heap.HeavyHitters(threshold);
  auto actual = truth.HeavyHitters(threshold);
  std::unordered_set<uint32_t> reported_keys;
  for (const auto& [key, est] : reported) reported_keys.insert(key);
  size_t found = 0;
  for (const auto& [key, f] : actual) {
    if (reported_keys.count(key)) ++found;
  }
  EXPECT_GT(static_cast<double>(found) / actual.size(), 0.9);
}

TEST(CountHeapTest, TrackedKeysBounded) {
  CountHeap heap(8 * 1024, 3, 7);
  for (uint32_t key = 1; key <= 10000; ++key) heap.Insert(key, 1);
  EXPECT_LE(heap.TrackedKeys().size(), 8u * 1024 / 4 / 8 + 1);
}

// ---------- Tower ----------

TEST(TowerSketchTest, LowLevelSaturatesHighLevelHolds) {
  TowerSketch tower(4096, 3);
  tower.Insert(77, 300);  // exceeds the 8-bit bottom level
  EXPECT_EQ(tower.Query(77), 300);
}

TEST(TowerSketchTest, CappedInsertReturnsOverflow) {
  TowerSketch tower(4096, 3);
  EXPECT_EQ(tower.InsertCapped(5, 10, 16), 0);
  EXPECT_EQ(tower.Query(5), 10);
  EXPECT_EQ(tower.InsertCapped(5, 10, 16), 4);  // only 6 more fit
  EXPECT_EQ(tower.Query(5), 16);
  EXPECT_EQ(tower.InsertCapped(5, 100, 16), 100);  // already at cap
}

TEST(TowerSketchTest, SubtractGoesSigned) {
  TowerSketch a(4096, 3), b(4096, 3);
  a.Insert(9, 5);
  b.Insert(9, 8);
  a.Subtract(b);
  EXPECT_EQ(a.QuerySigned(9), -3);
}

TEST(TowerSketchTest, MergeSaturatesAtLevelCap) {
  TowerSketch a(64, 3), b(64, 3);
  a.Insert(1, 200);
  b.Insert(1, 200);
  a.Merge(b);
  // Bottom level is 8-bit: the merged counter must not exceed its cap,
  // and the query must fall back to the wider level.
  EXPECT_GE(a.Query(1), 255);
}

TEST(TowerSketchTest, ZeroSlotsDecreaseWithInserts) {
  TowerSketch tower(4096, 3);
  size_t before = tower.ZeroSlots(0);
  for (uint32_t key = 1; key <= 100; ++key) tower.Insert(key, 1);
  EXPECT_LT(tower.ZeroSlots(0), before);
}

// ---------- Elastic ----------

TEST(ElasticSketchTest, HeavyFlowStaysExactInHeavyPart) {
  ElasticSketch sketch(64 * 1024, 4);
  for (int i = 0; i < 10000; ++i) sketch.Insert(123, 1);
  EXPECT_EQ(sketch.Query(123), 10000);
}

TEST(ElasticSketchTest, MergeAccumulatesHeavyFlows) {
  ElasticSketch a(64 * 1024, 4), b(64 * 1024, 4);
  a.Insert(55, 1000);
  b.Insert(55, 500);
  a.Merge(b);
  EXPECT_EQ(a.Query(55), 1500);
}

TEST(ElasticSketchTest, HeavyHittersFindDominantFlows) {
  Trace trace = SkewedTestTrace();
  ElasticSketch sketch(128 * 1024, 4);
  for (uint32_t key : trace.keys) sketch.Insert(key, 1);
  GroundTruth truth(trace.keys);
  int64_t threshold = trace.keys.size() / 500;
  auto reported = sketch.HeavyHitters(threshold);
  std::unordered_set<uint32_t> reported_keys;
  for (const auto& [key, est] : reported) reported_keys.insert(key);
  // Elastic's one-slot heavy buckets can lose an elephant to a bucket
  // collision with a bigger elephant, so require high recall, not 100%.
  auto actual = truth.HeavyHitters(threshold * 2);
  size_t found = 0;
  for (const auto& [key, f] : actual) {
    (void)f;
    if (reported_keys.count(key)) ++found;
  }
  EXPECT_GT(static_cast<double>(found) / actual.size(), 0.9);
}

// ---------- FCM ----------

TEST(FcmSketchTest, CarriesIntoUpperStages) {
  FcmSketch sketch(64 * 1024, 4);
  sketch.Insert(321, 100000);  // far beyond an 8-bit and 16-bit counter
  EXPECT_EQ(sketch.Query(321), 100000);
}

TEST(FcmSketchTest, BottomStageSupportsLinearCounting) {
  FcmSketch sketch(64 * 1024, 4);
  size_t zeros_before = sketch.BottomStageZeroSlots();
  for (uint32_t key = 1; key <= 500; ++key) sketch.Insert(key, 1);
  EXPECT_LT(sketch.BottomStageZeroSlots(), zeros_before);
}

// ---------- HashPipe / Coco ----------

TEST(HashPipeTest, RecallOnElephants) {
  Trace trace = SkewedTestTrace();
  HashPipe pipe(64 * 1024, 6, 3);
  for (uint32_t key : trace.keys) pipe.Insert(key, 1);
  GroundTruth truth(trace.keys);
  int64_t threshold = trace.keys.size() / 200;
  auto reported = pipe.HeavyHitters(threshold / 2);
  std::unordered_set<uint32_t> reported_keys;
  for (const auto& [key, est] : reported) reported_keys.insert(key);
  size_t found = 0;
  auto actual = truth.HeavyHitters(threshold);
  for (const auto& [key, f] : actual) {
    if (reported_keys.count(key)) ++found;
  }
  EXPECT_GT(static_cast<double>(found) / actual.size(), 0.85);
}

TEST(CocoSketchTest, CountConservedPerBucketGroup) {
  CocoSketch coco(32 * 1024, 2, 5);
  Trace trace = SkewedTestTrace(20000, 9);
  for (uint32_t key : trace.keys) coco.Insert(key, 1);
  auto hh = coco.HeavyHitters(0);
  int64_t total = 0;
  for (const auto& [key, est] : hh) total += est;
  // Coco conserves total count exactly across buckets.
  EXPECT_EQ(total, static_cast<int64_t>(trace.keys.size()));
}

// ---------- UnivMon ----------

TEST(UnivMonTest, CardinalityWithinFactor) {
  Trace trace = SkewedTestTrace(200000, 15);
  UnivMon univ(256 * 1024, 8, 2);
  for (uint32_t key : trace.keys) univ.Insert(key, 1);
  GroundTruth truth(trace.keys);
  double est = univ.EstimateCardinality();
  EXPECT_GT(est, truth.cardinality() * 0.3);
  EXPECT_LT(est, truth.cardinality() * 3.0);
}

TEST(UnivMonTest, EntropyWithinTolerance) {
  Trace trace = SkewedTestTrace(200000, 16);
  UnivMon univ(256 * 1024, 8, 4);
  for (uint32_t key : trace.keys) univ.Insert(key, 1);
  GroundTruth truth(trace.keys);
  EXPECT_NEAR(univ.EstimateEntropy(), truth.Entropy(),
              truth.Entropy() * 0.5);
}

}  // namespace
}  // namespace davinci
