// Tests for the core extensions: string keys, sliding windows, and binary
// serialization of DaVinci Sketch.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/davinci_sketch.h"
#include "core/key_adapter.h"
#include "core/sliding_davinci.h"
#include "workload/trace.h"

namespace davinci {
namespace {

// ---------- StringKeyDaVinci ----------

TEST(StringKeyTest, InsertAndQueryStrings) {
  StringKeyDaVinci sketch(128 * 1024, 1);
  for (int i = 0; i < 1000; ++i) sketch.Insert("alpha");
  for (int i = 0; i < 10; ++i) sketch.Insert("beta");
  EXPECT_EQ(sketch.Query("alpha"), 1000);
  EXPECT_LE(sketch.Query("beta"), 14);
  EXPECT_EQ(sketch.Query("never-seen"), 0);
}

TEST(StringKeyTest, LongKeysSupported) {
  StringKeyDaVinci sketch(64 * 1024, 2);
  std::string url(500, 'x');
  url += "/path?query=1";
  for (int i = 0; i < 77; ++i) sketch.Insert(url);
  EXPECT_EQ(sketch.Query(url), 77);
}

TEST(StringKeyTest, HeavyHittersReturnOriginalKeys) {
  StringKeyDaVinci sketch(128 * 1024, 3);
  for (int i = 0; i < 5000; ++i) sketch.Insert("elephant.example.com");
  for (uint32_t i = 0; i < 2000; ++i) {
    sketch.Insert("mouse-" + std::to_string(i));
  }
  auto heavy = sketch.HeavyHitters(1000);
  ASSERT_EQ(heavy.size(), 1u);
  EXPECT_EQ(heavy[0].first, "elephant.example.com");
  EXPECT_EQ(heavy[0].second, 5000);
}

TEST(StringKeyTest, FingerprintsAreStable) {
  StringKeyDaVinci a(64 * 1024, 4), b(64 * 1024, 4);
  EXPECT_EQ(a.Fingerprint("hello"), b.Fingerprint("hello"));
  EXPECT_NE(a.Fingerprint("hello"), a.Fingerprint("world"));
}

TEST(StringKeyTest, MergeCombinesKeySpaces) {
  StringKeyDaVinci a(128 * 1024, 5), b(128 * 1024, 5);
  for (int i = 0; i < 3000; ++i) a.Insert("seen-by-a");
  for (int i = 0; i < 4000; ++i) b.Insert("seen-by-b");
  a.Merge(b);
  EXPECT_NEAR(static_cast<double>(a.Query("seen-by-a")), 3000.0, 100.0);
  EXPECT_NEAR(static_cast<double>(a.Query("seen-by-b")), 4000.0, 100.0);
  auto heavy = a.HeavyHitters(2000);
  EXPECT_EQ(heavy.size(), 2u);
}

// ---------- SlidingDaVinci ----------

TEST(SlidingTest, WindowSumsEpochs) {
  SlidingDaVinci window(3, 64 * 1024, 1);
  window.Insert(5, 100);
  window.Advance();
  window.Insert(5, 200);
  EXPECT_EQ(window.Query(5), 300);
  EXPECT_EQ(window.QueryCurrentEpoch(5), 200);
}

TEST(SlidingTest, OldEpochsExpire) {
  SlidingDaVinci window(2, 64 * 1024, 2);
  window.Insert(9, 1000);
  window.Advance();  // epoch 2 (window = {1, 2})
  window.Advance();  // epoch 3 (window = {2, 3}); epoch 1 expired
  EXPECT_EQ(window.Query(9), 0);
}

TEST(SlidingTest, EpochCountBounded) {
  SlidingDaVinci window(4, 32 * 1024, 3);
  for (int i = 0; i < 10; ++i) window.Advance();
  EXPECT_EQ(window.epochs_in_window(), 4u);
  EXPECT_LE(window.MemoryBytes(), 4u * 33 * 1024);
}

TEST(SlidingTest, MergedWindowAnswersAllTasks) {
  SlidingDaVinci window(3, 128 * 1024, 4);
  Trace trace = BuildSkewedTrace("t", 60000, 6000, 1.0, 71);
  for (size_t i = 0; i < trace.keys.size(); ++i) {
    if (i > 0 && i % 20000 == 0) window.Advance();
    window.Insert(trace.keys[i], 1);
  }
  DaVinciSketch merged = window.MergedWindow();
  EXPECT_NEAR(merged.EstimateCardinality(), 6000.0, 600.0);
  EXPECT_FALSE(merged.HeavyHitters(60).empty());
}

TEST(SlidingTest, HeavyChangersNewestVsOldest) {
  SlidingDaVinci window(2, 128 * 1024, 5);
  for (int i = 0; i < 500; ++i) window.Insert(1, 1);
  window.Advance();
  for (int i = 0; i < 500; ++i) window.Insert(1, 1);   // stable
  for (int i = 0; i < 4000; ++i) window.Insert(2, 1);  // surge
  auto changers = window.HeavyChangers(2000);
  ASSERT_EQ(changers.size(), 1u);
  EXPECT_EQ(changers[0].first, 2u);
}

// ---------- Serialization ----------

TEST(SerializationTest, RoundTripPreservesQueries) {
  Trace trace = BuildSkewedTrace("t", 80000, 8000, 1.05, 81);
  DaVinciSketch original(200 * 1024, 6);
  for (uint32_t key : trace.keys) original.Insert(key, 1);

  std::stringstream buffer;
  original.Save(buffer);

  DaVinciSketch loaded(1024, 0);  // placeholder, overwritten by Load
  ASSERT_TRUE(DaVinciSketch::Load(buffer, &loaded));

  EXPECT_EQ(loaded.MemoryBytes(), original.MemoryBytes());
  for (uint32_t key : {trace.keys[0], trace.keys[100], trace.keys[999]}) {
    EXPECT_EQ(loaded.Query(key), original.Query(key));
  }
  EXPECT_DOUBLE_EQ(loaded.EstimateCardinality(),
                   original.EstimateCardinality());
}

TEST(SerializationTest, LoadedSketchStaysMergeable) {
  DaVinciSketch a(128 * 1024, 7), b(128 * 1024, 7);
  for (int i = 0; i < 2000; ++i) a.Insert(11, 1);
  for (int i = 0; i < 3000; ++i) b.Insert(11, 1);

  std::stringstream buffer;
  a.Save(buffer);
  DaVinciSketch loaded(1024, 0);
  ASSERT_TRUE(DaVinciSketch::Load(buffer, &loaded));

  loaded.Merge(b);  // same config + seeds → still linear
  EXPECT_EQ(loaded.Query(11), 5000);
}

TEST(SerializationTest, TruncatedStreamFailsCleanly) {
  DaVinciSketch sketch(64 * 1024, 8);
  sketch.Insert(5, 10);
  std::stringstream buffer;
  sketch.Save(buffer);
  std::string bytes = buffer.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  DaVinciSketch loaded(1024, 0);
  EXPECT_FALSE(DaVinciSketch::Load(truncated, &loaded));
}

TEST(SerializationTest, ConfigRoundTrip) {
  DaVinciConfig config = DaVinciConfig::FromMemory(256 * 1024, 99);
  config.evict_lambda = 16;
  config.promotion_threshold = 32;
  config.use_sign_hash = false;
  std::stringstream buffer;
  config.Save(buffer);
  DaVinciConfig loaded;
  ASSERT_TRUE(DaVinciConfig::Load(buffer, &loaded));
  EXPECT_EQ(loaded.fp_buckets, config.fp_buckets);
  EXPECT_EQ(loaded.evict_lambda, 16);
  EXPECT_EQ(loaded.promotion_threshold, 32);
  EXPECT_FALSE(loaded.use_sign_hash);
  EXPECT_EQ(loaded.seed, config.seed);
}

}  // namespace
}  // namespace davinci
