// DVSZ compressed wire format (DESIGN.md §Wire format):
//  - a compressed image round-trips to a sketch whose flat re-save is
//    byte-identical to the original flat image (so every query answer is
//    bit-identical too), and on a zipf-1.05 insert workload the DVSZ image
//    is at least 4x smaller than the flat one;
//  - delta images (SealDelta/SaveDelta/ApplyDelta) replay a receiver at
//    the sealed state to the sender's exact final bytes;
//  - the fan-in merge tree over the server protocol is bit-identical to an
//    in-process left fold of ConcurrentDaVinci::Merge, and a two-level
//    tree answers point queries exactly when no FP eviction is in play;
//  - hostile DVSZ bytes (truncated runs, overlong varints, zero-length
//    literal runs, duplicate sparse indices, bad trailers) reject cleanly
//    at the part and whole-image level;
//  - DVCK v1 (flat-body) checkpoints written before the v2 switch still
//    recover byte-identically.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/modular.h"
#include "common/serialize.h"
#include "common/varint.h"
#include "core/concurrent_davinci.h"
#include "core/davinci_sketch.h"
#include "server/client.h"
#include "server/server.h"
#include "test_seed.h"
#include "workload/trace.h"

namespace davinci {
namespace {

std::string FlatBytes(const DaVinciSketch& sketch) {
  std::stringstream out;
  sketch.Save(out);
  return out.str();
}

std::string CompressedBytes(const DaVinciSketch& sketch) {
  std::stringstream out;
  sketch.Save(out, SketchFormat::kCompressed);
  return out.str();
}

DaVinciSketch BuildZipfSketch(size_t total_bytes, uint64_t seed,
                              size_t trace_len) {
  // The acceptance workload: zipf-1.05 inserts (matches bench_wire_format).
  Trace trace =
      BuildSkewedTrace("wire", trace_len, trace_len / 20, 1.05, seed);
  DaVinciSketch sketch(total_bytes, seed);
  for (uint32_t key : trace.keys) sketch.Insert(key, 1);
  return sketch;
}

// ---------------------------------------------------------------------------
// Full-image round trip + compression ratio.

TEST(WireFormatTest, CompressedRoundTripIsByteIdenticalToFlat) {
  DaVinciSketch sketch = BuildZipfSketch(512 * 1024, 11, 200000);
  std::string flat = FlatBytes(sketch);
  std::string compressed = CompressedBytes(sketch);

  std::stringstream in(compressed);
  DaVinciSketch loaded(1024, 0);
  ASSERT_TRUE(DaVinciSketch::Load(in, &loaded));
  // Byte-identical flat re-save ⇒ every query path answers identically.
  EXPECT_EQ(FlatBytes(loaded), flat);

  // The acceptance bar from the issue: ≥ 4x smaller on this workload.
  EXPECT_GE(static_cast<double>(flat.size()),
            4.0 * static_cast<double>(compressed.size()))
      << "flat=" << flat.size() << " dvsz=" << compressed.size();
}

TEST(WireFormatTest, EmptySketchRoundTripsCompressed) {
  DaVinciSketch sketch(64 * 1024, 9);
  std::string compressed = CompressedBytes(sketch);
  std::stringstream in(compressed);
  DaVinciSketch loaded(1024, 0);
  ASSERT_TRUE(DaVinciSketch::Load(in, &loaded));
  EXPECT_EQ(FlatBytes(loaded), FlatBytes(sketch));
}

TEST(WireFormatTest, FlatImagesStillLoadUnchanged) {
  DaVinciSketch sketch = BuildZipfSketch(128 * 1024, 13, 40000);
  std::string flat = FlatBytes(sketch);
  std::stringstream in(flat);
  DaVinciSketch loaded(1024, 0);
  ASSERT_TRUE(DaVinciSketch::Load(in, &loaded));
  EXPECT_EQ(FlatBytes(loaded), flat);
}

// ---------------------------------------------------------------------------
// Delta images.

TEST(WireFormatTest, DeltaReplaysReceiverToSenderBytes) {
  DaVinciSketch sender = BuildZipfSketch(256 * 1024, 17, 60000);

  // Receiver = sender's exact state at seal time (flat round trip).
  std::stringstream sealed(FlatBytes(sender));
  DaVinciSketch receiver(1024, 0);
  ASSERT_TRUE(DaVinciSketch::Load(sealed, &receiver));

  sender.SealDelta();
  Trace tail = BuildSkewedTrace("tail", 8000, 500, 1.05, 99);
  for (uint32_t key : tail.keys) sender.Insert(key, 2);

  std::stringstream delta;
  sender.SaveDelta(delta);
  // The delta only carries touched buckets: it must be much smaller than
  // the full image.
  EXPECT_LT(delta.str().size(), FlatBytes(sender).size() / 2);

  ASSERT_TRUE(receiver.ApplyDelta(delta));
  EXPECT_EQ(FlatBytes(receiver), FlatBytes(sender));
}

TEST(WireFormatTest, EmptyDeltaIsAccepted) {
  DaVinciSketch sender = BuildZipfSketch(64 * 1024, 19, 10000);
  std::stringstream sealed(FlatBytes(sender));
  DaVinciSketch receiver(1024, 0);
  ASSERT_TRUE(DaVinciSketch::Load(sealed, &receiver));

  sender.SealDelta();  // nothing written after the seal
  std::stringstream delta;
  sender.SaveDelta(delta);
  ASSERT_TRUE(receiver.ApplyDelta(delta));
  EXPECT_EQ(FlatBytes(receiver), FlatBytes(sender));
}

TEST(WireFormatTest, DeltaAgainstMismatchedGeometryIsRejected) {
  DaVinciSketch sender(64 * 1024, 21);
  sender.SealDelta();
  sender.Insert(5, 1);
  std::stringstream delta;
  sender.SaveDelta(delta);
  DaVinciSketch other(128 * 1024, 21);  // different geometry
  std::string before = FlatBytes(other);
  EXPECT_FALSE(other.ApplyDelta(delta));
  EXPECT_EQ(FlatBytes(other), before);  // receiver untouched on failure
}

TEST(WireFormatTest, TruncatedDeltaLeavesReceiverUntouched) {
  DaVinciSketch sender = BuildZipfSketch(64 * 1024, 23, 10000);
  std::stringstream sealed(FlatBytes(sender));
  DaVinciSketch receiver(1024, 0);
  ASSERT_TRUE(DaVinciSketch::Load(sealed, &receiver));

  sender.SealDelta();
  for (uint32_t key = 1; key <= 500; ++key) sender.Insert(key, 3);
  std::stringstream delta;
  sender.SaveDelta(delta);
  std::string bytes = delta.str();
  std::string before = FlatBytes(receiver);
  for (size_t cut : {size_t{0}, size_t{3}, bytes.size() / 2,
                     bytes.size() - 1}) {
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_FALSE(receiver.ApplyDelta(truncated)) << "cut=" << cut;
    EXPECT_EQ(FlatBytes(receiver), before) << "cut=" << cut;
  }
}

// ---------------------------------------------------------------------------
// Hostile DVSZ bytes — part level.

TEST(WireFormatTest, TowerCompressedRejectsHostileRuns) {
  ElementFilter source(32 * 1024, {8, 16}, 64, 25);
  for (uint32_t key = 1; key <= 2000; ++key) {
    source.Insert(key * 2654435761u, 1 + static_cast<int64_t>(key % 5));
  }
  std::stringstream good;
  source.SaveStateCompressed(good);
  std::string bytes = good.str();

  ElementFilter target(32 * 1024, {8, 16}, 64, 25);

  // Truncation at every early offset and a sweep through the body.
  for (size_t cut = 0; cut < std::min<size_t>(bytes.size(), 32); ++cut) {
    std::stringstream in(bytes.substr(0, cut));
    EXPECT_FALSE(target.LoadStateCompressed(in)) << "cut=" << cut;
  }
  for (size_t cut = 32; cut < bytes.size(); cut += bytes.size() / 13 + 1) {
    std::stringstream in(bytes.substr(0, cut));
    EXPECT_FALSE(target.LoadStateCompressed(in)) << "cut=" << cut;
  }

  // Overlong varint: 11 continuation bytes can encode nothing.
  {
    std::stringstream in(std::string(11, '\x80'));
    EXPECT_FALSE(target.LoadStateCompressed(in));
  }
  // Zero-run longer than the level: first varint astronomically large.
  {
    std::stringstream in;
    WriteVarU64(in, uint64_t{1} << 40);
    EXPECT_FALSE(target.LoadStateCompressed(in));
  }

  // The good bytes themselves still load and match the source exactly.
  std::stringstream in(bytes);
  ASSERT_TRUE(target.LoadStateCompressed(in));
  std::stringstream a, b;
  source.SaveState(a);
  target.SaveState(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(WireFormatTest, SparseIfpRejectsHostileEntries) {
  InfrequentPart source(3, 2048, /*use_signs=*/true, 27);
  for (uint32_t key = 1; key <= 300; ++key) source.Insert(key, 1);
  InfrequentPart target(3, 2048, /*use_signs=*/true, 27);
  std::stringstream good;
  source.SaveStateCompressed(good);
  std::string bytes = good.str();
  ASSERT_FALSE(bytes.empty());

  // Unknown mode byte.
  {
    std::string mutated = bytes;
    mutated[0] = 2;
    std::stringstream in(mutated);
    EXPECT_FALSE(target.LoadStateCompressed(in));
  }
  // Hand-crafted sparse section with a duplicate index (second gap == 0).
  {
    std::stringstream in;
    WritePod(in, uint8_t{1});  // sparse mode
    WriteVarU64(in, 2);        // two live cells
    WriteVarU64(in, 0);        // cell 0
    WriteVarU64(in, 1);        //   id
    WriteVarI64(in, 1);        //   count
    WriteVarU64(in, 0);        // duplicate: gap 0 on a non-first entry
    WriteVarU64(in, 2);
    WriteVarI64(in, 1);
    EXPECT_FALSE(target.LoadStateCompressed(in));
  }
  // Out-of-range index: first gap beyond the cell count.
  {
    std::stringstream in;
    WritePod(in, uint8_t{1});
    WriteVarU64(in, 1);
    WriteVarU64(in, uint64_t{1} << 40);
    WriteVarU64(in, 1);
    WriteVarI64(in, 1);
    EXPECT_FALSE(target.LoadStateCompressed(in));
  }
  // Fermat residue out of range: id >= p.
  {
    std::stringstream in;
    WritePod(in, uint8_t{1});
    WriteVarU64(in, 1);
    WriteVarU64(in, 0);
    WriteVarU64(in, kFermatPrime);
    WriteVarI64(in, 1);
    EXPECT_FALSE(target.LoadStateCompressed(in));
  }

  // The good bytes themselves still load and match the source exactly.
  std::stringstream in(bytes);
  ASSERT_TRUE(target.LoadStateCompressed(in));
  std::stringstream a, b;
  source.SaveState(a);
  target.SaveState(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(WireFormatTest, WholeImageTrailerAndTruncationRejected) {
  DaVinciSketch sketch = BuildZipfSketch(96 * 1024, 29, 20000);
  std::string bytes = CompressedBytes(sketch);

  // Corrupted trailer.
  {
    std::string mutated = bytes;
    mutated.back() ^= 0x5A;
    std::stringstream in(mutated);
    DaVinciSketch loaded(1024, 0);
    EXPECT_FALSE(DaVinciSketch::Load(in, &loaded));
  }
  // Dense truncation sweep (same shape as the flat-image fuzz test).
  std::vector<size_t> cuts;
  for (size_t i = 0; i < 64 && i < bytes.size(); ++i) cuts.push_back(i);
  for (size_t i = 64; i < bytes.size(); i += bytes.size() / 97 + 1) {
    cuts.push_back(i);
  }
  for (size_t cut : cuts) {
    std::stringstream in(bytes.substr(0, cut));
    DaVinciSketch loaded(1024, 0);
    EXPECT_FALSE(DaVinciSketch::Load(in, &loaded)) << "cut=" << cut;
  }
}

// ---------------------------------------------------------------------------
// Merge tree over the server protocol.

class MergeTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server::ServerOptions options;
    options.workers = 2;
    server_ = std::make_unique<server::SketchServer>(options);
    ASSERT_TRUE(server_->Start());
    ASSERT_TRUE(client_.Connect(server_->port()));
  }
  void TearDown() override {
    client_.Close();
    server_->Stop();
  }

  static constexpr uint32_t kShards = 4;
  static constexpr uint64_t kBytes = 256 * 1024;
  static constexpr uint64_t kSeed = 77;

  void IngestSegment(const std::string& tenant, const Trace& trace,
                     size_t begin, size_t end) {
    std::vector<uint32_t> keys(trace.keys.begin() + begin,
                               trace.keys.begin() + end);
    std::vector<int64_t> ones(keys.size(), 1);
    ASSERT_EQ(client_.InsertBatch(tenant, keys, ones),
              server::StatusCode::kOk);
  }

  std::unique_ptr<server::SketchServer> server_;
  server::Client client_;
};

TEST_F(MergeTreeTest, WireFanInMatchesInProcessLeftFold) {
  const size_t kSources = 4;
  Trace trace = BuildSkewedTrace("fanin", 40000, 2000, 1.05, kSeed);
  const size_t seg = trace.keys.size() / kSources;

  ASSERT_EQ(client_.CreateTenant("agg", kShards, kBytes, kSeed),
            server::StatusCode::kOk);
  std::vector<server::Client::ExportedSketch> images;
  ConcurrentDaVinci expected(kShards, kBytes, kSeed);
  std::vector<std::unique_ptr<ConcurrentDaVinci>> sources;
  for (size_t i = 0; i < kSources; ++i) {
    std::string name = "src" + std::to_string(i);
    ASSERT_EQ(client_.CreateTenant(name, kShards, kBytes, kSeed),
              server::StatusCode::kOk);
    IngestSegment(name, trace, i * seg, (i + 1) * seg);
    // Mirror the same segment into an in-process engine.
    sources.push_back(
        std::make_unique<ConcurrentDaVinci>(kShards, kBytes, kSeed));
    std::vector<uint32_t> keys(trace.keys.begin() + i * seg,
                               trace.keys.begin() + (i + 1) * seg);
    std::vector<int64_t> ones(keys.size(), 1);
    sources.back()->InsertBatch(keys, ones);

    server::Client::ExportedSketch exported;
    // Alternate formats: flat and DVSZ must fold identically.
    uint8_t format = i % 2 == 0 ? 1 : 0;
    ASSERT_EQ(client_.ExportSketch(name, format, &exported),
              server::StatusCode::kOk);
    EXPECT_EQ(exported.height, 0u);  // raw-ingest leaves
    images.push_back(std::move(exported));
  }

  uint32_t height = 0;
  ASSERT_EQ(client_.ImportMerge("agg", images, &height),
            server::StatusCode::kOk);
  EXPECT_EQ(height, 1u);

  // In-process ground truth: left fold in request order.
  for (const auto& source : sources) expected.Merge(*source);

  server::Client::ExportedSketch agg_image;
  ASSERT_EQ(client_.ExportSketch("agg", /*format=*/0, &agg_image),
            server::StatusCode::kOk);
  EXPECT_EQ(agg_image.height, 1u);
  expected.FlushViews();
  std::stringstream expected_bytes;
  expected.SaveShards(expected_bytes);
  EXPECT_EQ(agg_image.image, expected_bytes.str())
      << "wire fan-in diverged from the in-process left fold";
}

TEST_F(MergeTreeTest, TwoLevelTreeAnswersMatchFlatFold) {
  // Few flows relative to FP capacity ⇒ no evictions, so merge order
  // cannot move mass between parts and the tree answers exactly like the
  // flat left fold.
  Trace trace = BuildSkewedTrace("tree", 8000, 300, 1.05, kSeed + 1);
  const size_t seg = trace.keys.size() / 4;
  const char* leaves[] = {"leaf0", "leaf1", "leaf2", "leaf3"};
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(client_.CreateTenant(leaves[i], kShards, kBytes, kSeed),
              server::StatusCode::kOk);
    IngestSegment(leaves[i], trace, i * seg, (i + 1) * seg);
  }
  for (const char* name : {"mid0", "mid1", "root", "flat"}) {
    ASSERT_EQ(client_.CreateTenant(name, kShards, kBytes, kSeed),
              server::StatusCode::kOk);
  }

  auto exported = [&](const std::string& name) {
    server::Client::ExportedSketch image;
    EXPECT_EQ(client_.ExportSketch(name, /*format=*/1, &image),
              server::StatusCode::kOk);
    return image;
  };
  auto import = [&](const std::string& target,
                    std::vector<server::Client::ExportedSketch> images) {
    uint32_t height = 0;
    EXPECT_EQ(client_.ImportMerge(target, images, &height),
              server::StatusCode::kOk);
    return height;
  };

  // Tree: (leaf0+leaf1) and (leaf2+leaf3), then the two mids.
  EXPECT_EQ(import("mid0", {exported(leaves[0]), exported(leaves[1])}), 1u);
  EXPECT_EQ(import("mid1", {exported(leaves[2]), exported(leaves[3])}), 1u);
  EXPECT_EQ(import("root", {exported("mid0"), exported("mid1")}), 2u);
  // Flat fold of all four leaves in one request.
  EXPECT_EQ(import("flat", {exported(leaves[0]), exported(leaves[1]),
                            exported(leaves[2]), exported(leaves[3])}),
            1u);

  for (uint32_t key : trace.keys) {
    int64_t via_tree = 0, via_flat = 0;
    ASSERT_EQ(client_.Query("root", key, &via_tree), server::StatusCode::kOk);
    ASSERT_EQ(client_.Query("flat", key, &via_flat), server::StatusCode::kOk);
    ASSERT_EQ(via_tree, via_flat) << "key=" << key;
  }

  // Provenance surfaced in health: root sits at height 2, leaves at 0.
  server::HealthReply health;
  ASSERT_EQ(client_.Health("root", &health), server::StatusCode::kOk);
  EXPECT_EQ(health.merge_height, 2u);
  ASSERT_EQ(client_.Health("leaf0", &health), server::StatusCode::kOk);
  EXPECT_EQ(health.merge_height, 0u);
}

TEST_F(MergeTreeTest, ImportValidationFailuresLeaveTargetUntouched) {
  ASSERT_EQ(client_.CreateTenant("tgt", kShards, kBytes, kSeed),
            server::StatusCode::kOk);
  ASSERT_EQ(client_.CreateTenant("src", kShards, kBytes, kSeed),
            server::StatusCode::kOk);
  ASSERT_EQ(client_.Insert("src", 42, 7), server::StatusCode::kOk);
  server::Client::ExportedSketch good;
  ASSERT_EQ(client_.ExportSketch("src", 1, &good), server::StatusCode::kOk);

  // Geometry mismatch: a source with different shard count.
  ASSERT_EQ(client_.CreateTenant("odd", kShards * 2, kBytes, kSeed),
            server::StatusCode::kOk);
  server::Client::ExportedSketch mismatched;
  ASSERT_EQ(client_.ExportSketch("odd", 1, &mismatched),
            server::StatusCode::kOk);

  // Batch = [good, mismatched]: all-or-nothing means even the good image
  // must not land.
  std::vector<server::Client::ExportedSketch> batch;
  batch.push_back(good);
  batch.push_back(mismatched);
  EXPECT_EQ(client_.ImportMerge("tgt", batch, nullptr),
            server::StatusCode::kBadArgument);
  int64_t count = -1;
  ASSERT_EQ(client_.Query("tgt", 42, &count), server::StatusCode::kOk);
  EXPECT_EQ(count, 0);

  // Garbage blob.
  server::Client::ExportedSketch garbage;
  garbage.image = std::string(64, '\x5A');
  std::vector<server::Client::ExportedSketch> bad{garbage};
  EXPECT_EQ(client_.ImportMerge("tgt", bad, nullptr),
            server::StatusCode::kBadArgument);

  // Trailing junk after a valid image.
  server::Client::ExportedSketch padded = good;
  padded.image += '\0';
  std::vector<server::Client::ExportedSketch> junk{padded};
  EXPECT_EQ(client_.ImportMerge("tgt", junk, nullptr),
            server::StatusCode::kBadArgument);

  // Unknown tenant / bad format on export.
  server::Client::ExportedSketch unused;
  EXPECT_EQ(client_.ExportSketch("ghost", 1, &unused),
            server::StatusCode::kNoSuchTenant);
  EXPECT_EQ(client_.ExportSketch("src", 2, &unused),
            server::StatusCode::kBadArgument);

  // Empty batch.
  std::vector<server::Client::ExportedSketch> empty;
  EXPECT_EQ(client_.ImportMerge("tgt", empty, nullptr),
            server::StatusCode::kBadArgument);
}

// ---------------------------------------------------------------------------
// DVCK v1 compatibility.

TEST(WireFormatTest, CheckpointV1FlatBodiesStillRecover) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "davinci_wire_format_v1_ckpt";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const uint32_t shards = 2;
  const uint64_t bytes = 128 * 1024, seed = 31;
  ConcurrentDaVinci engine(shards, bytes, seed);
  Trace trace = BuildSkewedTrace("v1", 20000, 1000, 1.05, seed);
  std::vector<int64_t> ones(trace.keys.size(), 1);
  engine.InsertBatch(trace.keys, ones);
  engine.FlushViews();

  // Hand-rolled DVCK v1: exactly what pre-compression servers wrote —
  // version 1 with a flat SaveShards body.
  {
    std::ofstream out(dir / "legacy.dvck", std::ios::binary);
    WritePod(out, uint32_t{0x4B435644});  // 'DVCK'
    WritePod(out, uint32_t{1});           // v1
    const std::string name = "legacy";
    WritePod(out, static_cast<uint16_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    WritePod(out, shards);
    WritePod(out, bytes);
    WritePod(out, seed);
    WritePod(out, uint32_t{0});  // window_epochs
    WritePod(out, uint64_t{3});  // epoch
    engine.SaveShards(out);      // flat body
    WritePod(out, uint32_t{0x44564B43});  // 'KCVD'
  }

  server::TenantRegistry registry(dir.string());
  ASSERT_EQ(registry.RecoverAll(), 1u);
  EXPECT_FALSE(registry.RecoveredEmpty("legacy"));
  std::shared_ptr<server::Tenant> tenant = registry.Find("legacy");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->epoch(), 3u);
  for (size_t i = 0; i < 64; ++i) {
    uint32_t key = trace.keys[i * (trace.keys.size() / 64)];
    EXPECT_EQ(tenant->engine().Query(key), engine.Query(key)) << key;
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace davinci
