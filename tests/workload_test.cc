#include <algorithm>
#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "workload/ground_truth.h"
#include "workload/trace.h"
#include "workload/zipf.h"

namespace davinci {
namespace {

TEST(ZipfTest, SamplesWithinDomain) {
  ZipfGenerator zipf(100, 1.0, 42);
  for (int i = 0; i < 1000; ++i) {
    uint64_t s = zipf.Next();
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, 100u);
  }
}

TEST(ZipfTest, SkewFavorsSmallRanks) {
  ZipfGenerator zipf(1000, 1.2, 7);
  size_t rank_one = 0;
  const size_t kSamples = 20000;
  for (size_t i = 0; i < kSamples; ++i) {
    if (zipf.Next() == 1) ++rank_one;
  }
  // With α=1.2 over 1000 items, rank 1 carries >10% of the mass.
  EXPECT_GT(rank_one, kSamples / 10);
}

TEST(ZipfTest, AlphaZeroIsRoughlyUniform) {
  ZipfGenerator zipf(10, 0.0, 11);
  std::unordered_map<uint64_t, size_t> counts;
  const size_t kSamples = 50000;
  for (size_t i = 0; i < kSamples; ++i) ++counts[zipf.Next()];
  for (const auto& [value, count] : counts) {
    (void)value;
    EXPECT_NEAR(static_cast<double>(count), kSamples / 10.0,
                kSamples / 10.0 * 0.15);
  }
}

TEST(ZipfTest, SeededReproducibility) {
  ZipfGenerator a(500, 1.0, 99), b(500, 1.0, 99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(TraceTest, ExactPacketAndFlowCounts) {
  Trace trace = BuildSkewedTrace("t", 100000, 5000, 1.0, 3);
  TraceStats stats = ComputeStats(trace);
  EXPECT_EQ(stats.packets, 100000u);
  EXPECT_EQ(stats.flows, 5000u);
  EXPECT_EQ(stats.cardinality, 5000u);
}

TEST(TraceTest, KeysAreNonZero) {
  Trace trace = BuildSkewedTrace("t", 20000, 1000, 1.0, 5);
  for (uint32_t key : trace.keys) {
    EXPECT_NE(key, 0u);
  }
}

TEST(TraceTest, SkewProducesDominantFlows) {
  Trace trace = BuildSkewedTrace("t", 100000, 5000, 1.2, 4);
  GroundTruth truth(trace.keys);
  int64_t max_f = 0;
  for (const auto& [key, f] : truth.frequencies()) {
    (void)key;
    max_f = std::max(max_f, f);
  }
  // The largest flow should hold a large share of a α=1.2 trace.
  EXPECT_GT(max_f, 100000 / 20);
}

TEST(TraceTest, TableTwoCalibrations) {
  // At 10% scale the shape of Table II must hold exactly.
  Trace caida = BuildCaidaLike(0.1);
  TraceStats s = ComputeStats(caida);
  EXPECT_EQ(s.packets, static_cast<size_t>(2472727 * 0.1));
  EXPECT_EQ(s.flows, static_cast<size_t>(109642 * 0.1));

  Trace tpcds = BuildTpcdsLike(0.1);
  TraceStats t = ComputeStats(tpcds);
  EXPECT_EQ(t.packets, static_cast<size_t>(4903874 * 0.1));
  EXPECT_LT(t.flows, 200u);  // tiny key domain is the TPC-DS signature
}

TEST(TraceTest, SliceBounds) {
  Trace trace = BuildSkewedTrace("t", 1000, 100, 1.0, 6);
  Trace half = Slice(trace, 0, 500, "half");
  EXPECT_EQ(half.keys.size(), 500u);
  Trace overshoot = Slice(trace, 900, 5000, "tail");
  EXPECT_EQ(overshoot.keys.size(), 100u);
  Trace inverted = Slice(trace, 800, 100, "empty");
  EXPECT_TRUE(inverted.keys.empty());
}

TEST(TraceTest, DeterministicForSeed) {
  Trace a = BuildSkewedTrace("t", 5000, 100, 1.0, 8);
  Trace b = BuildSkewedTrace("t", 5000, 100, 1.0, 8);
  EXPECT_EQ(a.keys, b.keys);
  Trace c = BuildSkewedTrace("t", 5000, 100, 1.0, 9);
  EXPECT_NE(a.keys, c.keys);
}

TEST(GroundTruthTest, FrequenciesSumToTotal) {
  std::vector<uint32_t> keys = {1, 2, 2, 3, 3, 3};
  GroundTruth truth(keys);
  EXPECT_EQ(truth.total(), 6);
  EXPECT_EQ(truth.cardinality(), 3u);
  EXPECT_EQ(truth.frequencies().at(3), 3);
}

TEST(GroundTruthTest, HeavyHittersThreshold) {
  std::vector<uint32_t> keys;
  for (int i = 0; i < 100; ++i) keys.push_back(7);
  for (int i = 0; i < 5; ++i) keys.push_back(9);
  GroundTruth truth(keys);
  auto hh = truth.HeavyHitters(50);
  ASSERT_EQ(hh.size(), 1u);
  EXPECT_EQ(hh[0].first, 7u);
}

TEST(GroundTruthTest, DistributionHistogram) {
  std::vector<uint32_t> keys = {1, 2, 2, 3, 3, 4, 4};
  GroundTruth truth(keys);
  auto hist = truth.Distribution();
  EXPECT_EQ(hist[1], 1);
  EXPECT_EQ(hist[2], 3);
}

TEST(GroundTruthTest, EntropyOfUniformIsLogN) {
  std::vector<uint32_t> keys = {1, 2, 3, 4};
  GroundTruth truth(keys);
  EXPECT_NEAR(truth.Entropy(), std::log(4.0), 1e-9);
}

TEST(GroundTruthTest, EntropyOfSingletonIsZero) {
  std::vector<uint32_t> keys = {5, 5, 5, 5};
  GroundTruth truth(keys);
  EXPECT_NEAR(truth.Entropy(), 0.0, 1e-12);
}

TEST(GroundTruthTest, InnerJoin) {
  GroundTruth a(std::vector<uint32_t>{1, 1, 2});
  GroundTruth b(std::vector<uint32_t>{1, 2, 2, 3});
  // 2·1 + 1·2 = 4.
  EXPECT_DOUBLE_EQ(GroundTruth::InnerJoin(a, b), 4.0);
}

TEST(GroundTruthTest, SignedDifference) {
  GroundTruth a(std::vector<uint32_t>{1, 1, 2, 4});
  GroundTruth b(std::vector<uint32_t>{1, 2, 3, 3});
  GroundTruth diff = GroundTruth::Difference(a, b);
  EXPECT_EQ(diff.frequencies().at(1), 1);
  EXPECT_EQ(diff.frequencies().count(2), 0u);  // cancels exactly
  EXPECT_EQ(diff.frequencies().at(3), -2);
  EXPECT_EQ(diff.frequencies().at(4), 1);
}

TEST(GroundTruthTest, UnionAddsFrequencies) {
  GroundTruth a(std::vector<uint32_t>{1, 2});
  GroundTruth b(std::vector<uint32_t>{2, 3});
  GroundTruth u = GroundTruth::Union(a, b);
  EXPECT_EQ(u.frequencies().at(2), 2);
  EXPECT_EQ(u.cardinality(), 3u);
  EXPECT_EQ(u.total(), 4);
}

}  // namespace
}  // namespace davinci
