// Checkpoint/recovery of the sketch server (docs/SERVER.md §Checkpoints):
//  - a daemon SIGKILLed mid-ingest after a checkpoint warm-restarts with
//    answers equal to a reference built from the pre-checkpoint prefix
//    (post-checkpoint mutations are lost, pre-checkpoint ones are not);
//  - corrupted or truncated checkpoint bodies are rejected by the Load
//    gate: the tenant comes back EMPTY instead of aborting the daemon,
//    and files with unreadable headers are skipped entirely.
//
// The kill legs exec the real davinci_serverd binary (path injected by
// CMake as DAVINCI_SERVERD_PATH) and parse its "LISTENING <port>" line.

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/concurrent_davinci.h"
#include "obs/health.h"
#include "server/client.h"
#include "server/server.h"
#include "test_seed.h"
#include "workload/trace.h"

namespace davinci::server {
namespace {

constexpr uint32_t kShards = 4;
constexpr uint64_t kTenantBytes = 128 * 1024;

std::filesystem::path FreshDir(const std::string& tag) {
  std::filesystem::path dir = std::filesystem::temp_directory_path() /
                              ("davinci_recovery_" + tag + "_" +
                               std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Forks + execs davinci_serverd; returns the pid and the parsed port.
struct DaemonHandle {
  pid_t pid = -1;
  uint16_t port = 0;
};

DaemonHandle SpawnDaemon(const std::string& checkpoint_dir) {
  int out_pipe[2];
  if (::pipe(out_pipe) != 0) return {};
  pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::execl(DAVINCI_SERVERD_PATH, DAVINCI_SERVERD_PATH, "--port", "0",
            "--checkpoint-dir", checkpoint_dir.c_str(), "--workers", "2",
            static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  ::close(out_pipe[1]);
  DaemonHandle handle;
  handle.pid = pid;
  // Read until the LISTENING line (the daemon prints it once bound).
  std::string banner;
  char c = 0;
  while (banner.find('\n') == std::string::npos &&
         ::read(out_pipe[0], &c, 1) == 1) {
    banner.push_back(c);
  }
  ::close(out_pipe[0]);
  unsigned port = 0;
  if (std::sscanf(banner.c_str(), "LISTENING %u", &port) == 1) {
    handle.port = static_cast<uint16_t>(port);
  }
  return handle;
}

void KillDaemon(pid_t pid, int sig) {
  ::kill(pid, sig);
  int status = 0;
  ::waitpid(pid, &status, 0);
}

TEST(ServerRecoveryTest, Sigkill_RecoversPreCheckpointPrefix) {
  const uint64_t seed = testing::TestSeed(31);
  DAVINCI_ANNOUNCE_SEED(seed);
  std::filesystem::path dir = FreshDir("kill");

  Trace trace = BuildSkewedTrace("r", 40000, 3000, 1.0, seed);
  const size_t prefix = trace.keys.size() / 2;
  std::vector<int64_t> ones(trace.keys.size(), 1);

  DaemonHandle daemon = SpawnDaemon(dir.string());
  ASSERT_GT(daemon.pid, 0);
  ASSERT_NE(daemon.port, 0);
  {
    Client client;
    ASSERT_TRUE(client.Connect(daemon.port));
    ASSERT_EQ(client.CreateTenant("t", kShards, kTenantBytes, seed),
              StatusCode::kOk);
    // Pre-checkpoint prefix, then a durable checkpoint...
    ASSERT_EQ(client.InsertBatch(
                  "t", std::span<const uint32_t>(trace.keys.data(), prefix),
                  std::span<const int64_t>(ones.data(), prefix)),
              StatusCode::kOk);
    bool written = false;
    ASSERT_EQ(client.Checkpoint("t", &written), StatusCode::kOk);
    ASSERT_TRUE(written);
    // ...then post-checkpoint mutations the SIGKILL must lose.
    ASSERT_EQ(client.InsertBatch(
                  "t",
                  std::span<const uint32_t>(trace.keys.data() + prefix,
                                            trace.keys.size() - prefix),
                  std::span<const int64_t>(ones.data() + prefix,
                                           trace.keys.size() - prefix)),
              StatusCode::kOk);
    int64_t sync = 0;  // fully round-tripped => the batch was applied
    ASSERT_EQ(client.Query("t", trace.keys[0], &sync), StatusCode::kOk);
  }
  KillDaemon(daemon.pid, SIGKILL);

  // Reference: exactly the pre-checkpoint prefix.
  ConcurrentDaVinci reference(kShards, kTenantBytes, seed);
  reference.InsertBatch(std::span<const uint32_t>(trace.keys.data(), prefix),
                        std::span<const int64_t>(ones.data(), prefix));

  daemon = SpawnDaemon(dir.string());
  ASSERT_GT(daemon.pid, 0);
  ASSERT_NE(daemon.port, 0);
  {
    Client client;
    ASSERT_TRUE(client.Connect(daemon.port));
    std::vector<std::string> names;
    ASSERT_EQ(client.ListTenants(&names), StatusCode::kOk);
    EXPECT_EQ(names, std::vector<std::string>{"t"});

    std::vector<uint32_t> probe(trace.keys.begin(),
                                trace.keys.begin() + 1024);
    std::vector<int64_t> recovered;
    ASSERT_EQ(client.QueryBatch("t", probe, &recovered), StatusCode::kOk);
    EXPECT_EQ(recovered, reference.QueryBatch(probe));

    double wire_card = 0;
    ASSERT_EQ(client.Cardinality("t", &wire_card), StatusCode::kOk);
    double local_card = reference.EstimateCardinality();
    EXPECT_EQ(std::memcmp(&wire_card, &local_card, sizeof(double)), 0);

    std::vector<std::pair<uint32_t, int64_t>> hitters;
    ASSERT_EQ(client.HeavyHitters("t", 50, &hitters), StatusCode::kOk);
    EXPECT_EQ(hitters, reference.HeavyHitters(50));
  }
  KillDaemon(daemon.pid, SIGTERM);
  std::filesystem::remove_all(dir);
}

TEST(ServerRecoveryTest, Sigkill_ResizedGeometryAndQuotaSurviveRestart) {
  const uint64_t seed = testing::TestSeed(47);
  DAVINCI_ANNOUNCE_SEED(seed);
  std::filesystem::path dir = FreshDir("resize");

  Trace trace = BuildSkewedTrace("z", 30000, 2500, 1.0, seed);
  std::vector<int64_t> ones(trace.keys.size(), 1);

  DaemonHandle daemon = SpawnDaemon(dir.string());
  ASSERT_GT(daemon.pid, 0);
  ASSERT_NE(daemon.port, 0);
  uint64_t resized_memory = 0;
  {
    Client client;
    ASSERT_TRUE(client.Connect(daemon.port));
    // A quota-capped tenant: create at 128K with a 512K ceiling.
    ASSERT_EQ(client.CreateTenant("z", kShards, kTenantBytes, seed,
                                  /*window_epochs=*/0,
                                  /*max_bytes=*/4 * kTenantBytes),
              StatusCode::kOk);
    ASSERT_EQ(client.InsertBatch("z", trace.keys, ones), StatusCode::kOk);
    // kResizeTenant on a persistent server checkpoints at the same seal
    // boundary it rebuilds on: no explicit kCheckpoint follows, the
    // SIGKILL must not lose the new geometry OR the migrated state.
    ASSERT_EQ(client.ResizeTenant("z", 2 * kTenantBytes, &resized_memory),
              StatusCode::kOk);
    EXPECT_GT(resized_memory, kTenantBytes);
  }
  KillDaemon(daemon.pid, SIGKILL);

  daemon = SpawnDaemon(dir.string());
  ASSERT_GT(daemon.pid, 0);
  ASSERT_NE(daemon.port, 0);
  {
    Client client;
    ASSERT_TRUE(client.Connect(daemon.port));
    HealthReply health;
    ASSERT_EQ(client.Health("z", &health), StatusCode::kOk);
    // The recovered engine reports the post-resize footprint, and the
    // resize provenance itself survived the DVCK round trip.
    EXPECT_EQ(health.memory_bytes, resized_memory);
    EXPECT_EQ(health.resizes_applied, 1u);
    EXPECT_EQ(health.resize_bytes_after, resized_memory);
    EXPECT_EQ(health.resize_last_trigger,
              static_cast<uint32_t>(obs::ResizeHealth::kAdmin));
    // Migrated state serves: the heaviest flow's estimate is within the
    // rebuild contract's per-flow slack of its true count.
    int64_t heavy = 0;
    ASSERT_EQ(client.Query("z", trace.keys.front(), &heavy), StatusCode::kOk);
    EXPECT_GT(heavy, 0);
    // The quota survived too: over-ceiling resizes still bounce.
    EXPECT_EQ(client.ResizeTenant("z", 8 * kTenantBytes),
              StatusCode::kQuotaExceeded);
    ASSERT_EQ(client.ResizeTenant("z", 4 * kTenantBytes), StatusCode::kOk);
  }
  KillDaemon(daemon.pid, SIGTERM);
  std::filesystem::remove_all(dir);
}

TEST(ServerRecoveryTest, GracefulStopCheckpointsEverything) {
  const uint64_t seed = testing::TestSeed(37);
  DAVINCI_ANNOUNCE_SEED(seed);
  std::filesystem::path dir = FreshDir("graceful");
  Trace trace = BuildSkewedTrace("g", 20000, 1500, 1.0, seed);
  std::vector<int64_t> ones(trace.keys.size(), 1);

  {
    ServerOptions options;
    options.checkpoint_dir = dir.string();
    SketchServer server(options);
    ASSERT_TRUE(server.Start());
    Client client;
    ASSERT_TRUE(client.Connect(server.port()));
    ASSERT_EQ(client.CreateTenant("g", kShards, kTenantBytes, seed),
              StatusCode::kOk);
    ASSERT_EQ(client.InsertBatch("g", trace.keys, ones), StatusCode::kOk);
    client.Close();
    server.Stop();  // graceful: checkpoints without any explicit request
  }

  ConcurrentDaVinci reference(kShards, kTenantBytes, seed);
  reference.InsertBatch(trace.keys, ones);

  ServerOptions options;
  options.checkpoint_dir = dir.string();
  SketchServer server(options);
  ASSERT_TRUE(server.Start());
  Client client;
  ASSERT_TRUE(client.Connect(server.port()));
  std::vector<uint32_t> probe(trace.keys.begin(), trace.keys.begin() + 512);
  std::vector<int64_t> recovered;
  ASSERT_EQ(client.QueryBatch("g", probe, &recovered), StatusCode::kOk);
  EXPECT_EQ(recovered, reference.QueryBatch(probe));
  EXPECT_FALSE(server.registry().RecoveredEmpty("g"));
  client.Close();
  server.Stop();
  std::filesystem::remove_all(dir);
}

TEST(ServerRecoveryTest, CorruptBodyYieldsEmptyTenantNotAbort) {
  const uint64_t seed = testing::TestSeed(41);
  DAVINCI_ANNOUNCE_SEED(seed);
  std::filesystem::path dir = FreshDir("corrupt");

  {
    TenantRegistry registry(dir.string());
    std::shared_ptr<Tenant> tenant;
    ASSERT_EQ(registry.Create("c", {kShards, kTenantBytes, seed, 0}, &tenant),
              RegistryResult::kOk);
    Trace trace = BuildSkewedTrace("c", 20000, 1500, 1.0, seed);
    std::vector<int64_t> ones(trace.keys.size(), 1);
    tenant->InsertBatch(trace.keys, ones);
    ASSERT_EQ(registry.CheckpointAll(), 1u);
  }

  // Stomp 0xFF over bytes just past the fixed header: the header still
  // parses, but the shard image's internal lengths/config blow the Load
  // gate's caps.
  std::filesystem::path file = dir / "c.dvck";
  ASSERT_TRUE(std::filesystem::exists(file));
  {
    std::fstream io(file, std::ios::binary | std::ios::in | std::ios::out);
    io.seekp(64);
    std::string garbage(64, '\xFF');
    io.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
  }

  TenantRegistry recovered(dir.string());
  ASSERT_EQ(recovered.RecoverAll(), 1u);  // tenant revived, not skipped
  EXPECT_TRUE(recovered.RecoveredEmpty("c"));
  std::shared_ptr<Tenant> tenant = recovered.Find("c");
  ASSERT_NE(tenant, nullptr);
  // Empty fallback with the header's options: serves zeros, never aborts.
  EXPECT_EQ(tenant->options().shards, kShards);
  EXPECT_EQ(tenant->engine().Query(12345), 0);
  EXPECT_EQ(tenant->engine().HeavyHitters(1).size(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(ServerRecoveryTest, TruncationHandling) {
  const uint64_t seed = testing::TestSeed(43);
  DAVINCI_ANNOUNCE_SEED(seed);
  std::filesystem::path dir = FreshDir("trunc");

  {
    TenantRegistry registry(dir.string());
    std::shared_ptr<Tenant> tenant;
    ASSERT_EQ(registry.Create("t", {kShards, kTenantBytes, seed, 0}, &tenant),
              RegistryResult::kOk);
    tenant->Insert(7, 100);
    ASSERT_EQ(registry.CheckpointAll(), 1u);
  }
  std::filesystem::path file = dir / "t.dvck";
  std::uintmax_t full_size = std::filesystem::file_size(file);

  // Cut mid-body: header parses, body fails => empty tenant.
  std::filesystem::resize_file(file, full_size / 2);
  {
    TenantRegistry registry(dir.string());
    ASSERT_EQ(registry.RecoverAll(), 1u);
    EXPECT_TRUE(registry.RecoveredEmpty("t"));
    EXPECT_EQ(registry.Find("t")->engine().Query(7), 0);
  }

  // Cut mid-header: nothing trustworthy, the file is skipped outright.
  std::filesystem::resize_file(file, 6);
  {
    TenantRegistry registry(dir.string());
    EXPECT_EQ(registry.RecoverAll(), 0u);
    EXPECT_EQ(registry.size(), 0u);
  }

  // A checkpoint missing only its trailer (torn tail write) is rejected
  // too: the trailer is the integrity seal.
  {
    TenantRegistry registry(dir.string());
    std::shared_ptr<Tenant> tenant;
    ASSERT_EQ(registry.Create("t2", {kShards, kTenantBytes, seed, 0},
                              &tenant),
              RegistryResult::kOk);
    tenant->Insert(9, 50);
    ASSERT_EQ(registry.Checkpoint(*tenant), true);
  }
  std::filesystem::path file2 = dir / "t2.dvck";
  std::filesystem::resize_file(file2,
                               std::filesystem::file_size(file2) - 2);
  {
    TenantRegistry registry(dir.string());
    ASSERT_GE(registry.RecoverAll(), 1u);
    EXPECT_TRUE(registry.RecoveredEmpty("t2"));
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace davinci::server
