// Distributed measurement: several vantage points each observe part of the
// traffic and keep a local DaVinci Sketch. A collector merges them with
// the union operation (Algorithm 3) and answers network-wide queries —
// no raw packets leave the vantage points.

#include <cstdio>
#include <vector>

#include "core/davinci_sketch.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

namespace {

constexpr int kVantagePoints = 4;
constexpr size_t kSketchBytes = 300 * 1024;
constexpr uint64_t kSharedSeed = 11;  // all sites must share hash seeds

}  // namespace

int main() {
  davinci::Trace total =
      davinci::BuildSkewedTrace("global", 800000, 80000, 1.05, 77);
  davinci::GroundTruth truth(total.keys);

  // Each vantage point sees an interleaved share of the traffic.
  std::vector<davinci::DaVinciSketch> sites;
  for (int site = 0; site < kVantagePoints; ++site) {
    sites.emplace_back(kSketchBytes, kSharedSeed);
  }
  for (size_t i = 0; i < total.keys.size(); ++i) {
    sites[i % kVantagePoints].Insert(total.keys[i], 1);
  }

  std::printf("%d vantage points, %zu KB sketch each\n", kVantagePoints,
              kSketchBytes / 1024);
  for (int site = 0; site < kVantagePoints; ++site) {
    std::printf("  site %d sees ~%.0f distinct flows\n", site,
                sites[site].EstimateCardinality());
  }

  // Collector: fold all sites into one network-wide sketch.
  davinci::DaVinciSketch global = sites[0];
  for (int site = 1; site < kVantagePoints; ++site) {
    global.Merge(sites[site]);
  }

  std::printf("\nnetwork-wide view after union:\n");
  std::printf("  cardinality: estimated %.0f, true %zu\n",
              global.EstimateCardinality(), truth.cardinality());
  std::printf("  entropy:     estimated %.4f, true %.4f\n",
              global.EstimateEntropy(), truth.Entropy());

  int64_t threshold = static_cast<int64_t>(total.keys.size() * 0.0002);
  auto global_heavy = global.HeavyHitters(threshold);
  auto true_heavy = truth.HeavyHitters(threshold);
  std::printf("  heavy hitters > %lld pkts: %zu reported, %zu true\n",
              static_cast<long long>(threshold), global_heavy.size(),
              true_heavy.size());

  // Spot-check a few elephants against their true network-wide size.
  std::printf("\n  flow        estimate      true\n");
  int shown = 0;
  for (const auto& [key, f] : true_heavy) {
    if (shown++ == 5) break;
    std::printf("  %08x %9lld %9lld\n", key,
                static_cast<long long>(global.Query(key)),
                static_cast<long long>(f));
  }
  return 0;
}
