// Quickstart: one DaVinci Sketch, nine set-measurement tasks.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/davinci_sketch.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

int main() {
  // A synthetic packet trace: 500k packets over 50k flows, Zipf-skewed
  // like real network traffic.
  davinci::Trace trace =
      davinci::BuildSkewedTrace("quickstart", 500000, 50000, 1.05, 2024);
  davinci::GroundTruth truth(trace.keys);

  // One sketch, 400 KB. The byte budget is split across the frequent
  // part / element filter / infrequent part automatically.
  davinci::DaVinciSketch sketch(400 * 1024, /*seed=*/1);
  for (uint32_t key : trace.keys) {
    sketch.Insert(key, 1);
  }

  std::printf("DaVinci Sketch quickstart (%zu packets, %zu flows, %zu KB)\n\n",
              trace.keys.size(), truth.cardinality(),
              sketch.MemoryBytes() / 1024);

  // Task 1: per-flow frequency.
  uint32_t probe = trace.keys[0];
  std::printf("frequency of flow %u: estimated %lld, true %lld\n", probe,
              static_cast<long long>(sketch.Query(probe)),
              static_cast<long long>(truth.frequencies().at(probe)));

  // Task 2: heavy hitters above 0.02%% of the stream.
  int64_t threshold = static_cast<int64_t>(trace.keys.size() * 0.0002);
  auto heavy = sketch.HeavyHitters(threshold);
  std::printf("heavy hitters (> %lld pkts): %zu found (true: %zu)\n",
              static_cast<long long>(threshold), heavy.size(),
              truth.HeavyHitters(threshold).size());

  // Task 3: cardinality.
  std::printf("cardinality: estimated %.0f, true %zu\n",
              sketch.EstimateCardinality(), truth.cardinality());

  // Task 4: flow-size distribution (print the head).
  auto distribution = sketch.Distribution();
  std::printf("flow-size distribution head:");
  int shown = 0;
  for (const auto& [size, count] : distribution) {
    if (shown++ == 4) break;
    std::printf("  size %lld: %lld flows;", static_cast<long long>(size),
                static_cast<long long>(count));
  }
  std::printf("\n");

  // Task 5: entropy.
  std::printf("entropy: estimated %.4f, true %.4f\n", sketch.EstimateEntropy(),
              truth.Entropy());

  // Tasks 6-9 operate on two sketches. Split the trace into two windows.
  size_t half = trace.keys.size() / 2;
  davinci::DaVinciSketch w1(400 * 1024, 1), w2(400 * 1024, 1);
  for (size_t i = 0; i < half; ++i) w1.Insert(trace.keys[i], 1);
  for (size_t i = half; i < trace.keys.size(); ++i) {
    w2.Insert(trace.keys[i], 1);
  }

  // Task 6: union (sketch-level merge).
  davinci::DaVinciSketch merged = w1;
  merged.Merge(w2);
  std::printf("union: frequency of flow %u in merged sketch: %lld\n", probe,
              static_cast<long long>(merged.Query(probe)));

  // Task 7: difference (signed).
  davinci::DaVinciSketch diff = w1;
  diff.Subtract(w2);
  std::printf("difference: flow %u changed by %lld between windows\n", probe,
              static_cast<long long>(diff.Query(probe)));

  // Task 8: heavy changers.
  auto changers = w1.HeavyChangers(w2, threshold / 2);
  std::printf("heavy changers (|delta| > %lld): %zu found\n",
              static_cast<long long>(threshold / 2), changers.size());

  // Task 9: cardinality of the inner join.
  double join = davinci::DaVinciSketch::InnerProduct(w1, w2);
  double join_truth = davinci::GroundTruth::InnerJoin(
      davinci::GroundTruth(std::vector<uint32_t>(trace.keys.begin(),
                                                 trace.keys.begin() + half)),
      davinci::GroundTruth(std::vector<uint32_t>(trace.keys.begin() + half,
                                                 trace.keys.end())));
  std::printf("inner join: estimated %.3g, true %.3g\n", join, join_truth);
  return 0;
}
