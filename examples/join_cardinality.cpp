// Database join-size estimation: a TPC-DS-like scenario. Two fact tables
// share a skewed join key column; a query optimizer wants |R ⋈ S| without
// scanning either table. Each table keeps a DaVinci Sketch of its key
// column; the nine-component inner product estimates the join cardinality.

#include <cstdio>
#include <vector>

#include "core/davinci_sketch.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

int main() {
  // Two "tables": key columns with a small, highly skewed key domain
  // (the TPC-DS signature) and partial overlap.
  davinci::Trace base = davinci::BuildTpcdsLike(0.3, 99);
  size_t n = base.keys.size();
  std::vector<uint32_t> r_keys(base.keys.begin(), base.keys.begin() + 2 * n / 3);
  std::vector<uint32_t> s_keys(base.keys.begin() + n / 3, base.keys.end());

  double truth = davinci::GroundTruth::InnerJoin(davinci::GroundTruth(r_keys),
                                                 davinci::GroundTruth(s_keys));

  std::printf("join-size estimation: |R| = %zu rows, |S| = %zu rows\n",
              r_keys.size(), s_keys.size());
  std::printf("exact |R join S| = %.4g\n\n", truth);
  std::printf("sketch_kb,estimate,relative_error\n");

  for (size_t kb : {100, 200, 400, 800}) {
    davinci::DaVinciSketch r(kb * 1024, 3), s(kb * 1024, 3);
    for (uint32_t key : r_keys) r.Insert(key, 1);
    for (uint32_t key : s_keys) s.Insert(key, 1);
    double estimate = davinci::DaVinciSketch::InnerProduct(r, s);
    std::printf("%zu,%.4g,%.4f%%\n", kb, estimate,
                100.0 * (estimate - truth) / truth);
  }

  std::printf("\nThe same sketches also answer the optimizer's other "
              "questions:\n");
  davinci::DaVinciSketch r(400 * 1024, 3);
  for (uint32_t key : r_keys) r.Insert(key, 1);
  std::printf("  distinct keys in R: %.0f (true %zu)\n",
              r.EstimateCardinality(),
              davinci::GroundTruth(r_keys).cardinality());
  auto top = r.HeavyHitters(static_cast<int64_t>(r_keys.size() / 100));
  std::printf("  keys above 1%% of R (skew detection for join planning): "
              "%zu\n",
              top.size());
  return 0;
}
