// Network traffic monitoring: the paper's motivating scenario. A monitor
// watches consecutive measurement windows with one DaVinci Sketch per
// window and simultaneously reports flow sizes, elephants, surging flows
// (possible DDoS sources), traffic entropy (anomaly signal) and flow
// cardinality — all from the same per-window structure.

#include <cstdio>
#include <vector>

#include "core/davinci_sketch.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

namespace {

constexpr size_t kSketchBytes = 300 * 1024;
constexpr int kWindows = 4;

davinci::Trace MakeWindow(int window, uint64_t seed) {
  // Background traffic plus, in window 2, a synthetic SYN-flood-like surge
  // from one source.
  davinci::Trace trace =
      davinci::BuildSkewedTrace("window", 300000, 40000, 1.0, seed + window);
  if (window == 2) {
    const uint32_t attacker = 0xbadf00d;
    trace.keys.insert(trace.keys.end(), 40000, attacker);
  }
  return trace;
}

}  // namespace

int main() {
  std::printf("window |   packets | cardinality | entropy | elephants | "
              "surging flows\n");

  davinci::DaVinciSketch previous(kSketchBytes, 7);
  bool have_previous = false;

  for (int window = 0; window < kWindows; ++window) {
    davinci::Trace trace = MakeWindow(window, 555);
    davinci::DaVinciSketch sketch(kSketchBytes, 7);
    for (uint32_t key : trace.keys) sketch.Insert(key, 1);

    int64_t elephant_threshold =
        static_cast<int64_t>(trace.keys.size() * 0.0005);
    auto elephants = sketch.HeavyHitters(elephant_threshold);

    size_t surges = 0;
    if (have_previous) {
      // Heavy changers against the previous window: flows that surged or
      // collapsed by more than 1% of the window volume.
      int64_t delta = static_cast<int64_t>(trace.keys.size() * 0.01);
      for (const auto& [key, change] : sketch.HeavyChangers(previous, delta)) {
        ++surges;
        std::printf("        -> flow %08x changed by %+lld packets\n", key,
                    static_cast<long long>(change));
      }
    }

    std::printf("%6d | %9zu | %11.0f | %7.4f | %9zu | %zu\n", window,
                trace.keys.size(), sketch.EstimateCardinality(),
                sketch.EstimateEntropy(), elephants.size(), surges);

    previous = sketch;
    have_previous = true;
  }

  std::printf("\nNote: window 2 contains a synthetic 40k-packet surge; the "
              "heavy-changer report above should isolate flow 0badf00d in "
              "windows 2 (surge) and 3 (recovery), and the entropy dip in "
              "window 2 is the anomaly signal.\n");
  return 0;
}
