// Text analytics: the paper's data-mining motivation ("in text processing,
// a few words occur very frequently, while the majority appear
// infrequently"). A StringKeyDaVinci summarizes a synthetic document
// stream: top terms, vocabulary size, term-frequency entropy, and the
// vocabulary churn between two corpora via sketch difference.

#include <cstdio>
#include <string>
#include <vector>

#include "core/key_adapter.h"
#include "workload/zipf.h"

namespace {

// A Zipf-distributed word stream over a synthetic vocabulary. Rank 1..30
// are "stopwords"; the tail mimics content words.
std::vector<std::string> MakeCorpus(size_t words, double skew,
                                    uint64_t seed) {
  static const char* kStopwords[] = {
      "the", "of",  "and", "a",    "to",   "in",  "is",  "you", "that", "it",
      "he",  "was", "for", "on",   "are",  "as",  "with", "his", "they", "i",
      "at",  "be",  "this", "have", "from", "or",  "one", "had", "by",  "word"};
  davinci::ZipfGenerator zipf(20000, skew, seed);
  std::vector<std::string> corpus;
  corpus.reserve(words);
  for (size_t i = 0; i < words; ++i) {
    uint64_t rank = zipf.Next();
    if (rank <= 30) {
      corpus.emplace_back(kStopwords[rank - 1]);
    } else {
      corpus.emplace_back("term" + std::to_string(rank));
    }
  }
  return corpus;
}

}  // namespace

int main() {
  auto corpus_a = MakeCorpus(400000, 1.1, 11);
  auto corpus_b = MakeCorpus(400000, 1.1, 22);

  davinci::StringKeyDaVinci a(256 * 1024, 5), b(256 * 1024, 5);
  for (const std::string& word : corpus_a) a.Insert(word);
  for (const std::string& word : corpus_b) b.Insert(word);

  std::printf("corpus A: %zu words, vocabulary ~%.0f terms, entropy %.3f\n",
              corpus_a.size(), a.EstimateCardinality(), a.EstimateEntropy());

  std::printf("\ntop terms in corpus A (> 1%% of tokens):\n");
  for (const auto& [word, count] :
       a.HeavyHitters(static_cast<int64_t>(corpus_a.size() / 100))) {
    std::printf("  %-8s %lld\n", word.c_str(),
                static_cast<long long>(count));
  }

  // Vocabulary churn: which terms shifted most between the corpora?
  davinci::StringKeyDaVinci diff = a;
  diff.Subtract(b);
  std::printf("\nterm usage shifts A-B (|delta| > 0.5%%):\n");
  int shown = 0;
  for (const auto& [word, change] :
       diff.HeavyHitters(static_cast<int64_t>(corpus_a.size() / 200))) {
    if (shown++ == 8) break;
    std::printf("  %-10s %+lld\n", word.c_str(),
                static_cast<long long>(change));
  }
  if (shown == 0) {
    std::printf("  (no significant shifts — same distribution, as "
                "expected for same-skew corpora)\n");
  }
  std::printf("\nnote: identical skew means stopword frequencies cancel in "
              "the difference; shifts appear only in the random tail.\n");
  return 0;
}
