// davinci_cli: a small command-line front end to the library.
//
//   davinci_cli build  <trace.bin> <sketch.bin> [memory_kb]   encode a trace
//   davinci_cli query  <sketch.bin> <key>                     point query
//   davinci_cli report <sketch.bin> [threshold]               all single-set tasks
//   davinci_cli merge  <a.bin> <b.bin> <out.bin>              union
//   davinci_cli diff   <a.bin> <b.bin> <out.bin>              difference
//   davinci_cli join   <a.bin> <b.bin>                        inner-join size
//   davinci_cli gen    <trace.bin> [packets] [flows] [skew]   synthetic trace
//
// Trace files are flat little-endian uint32 keys, one per packet.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/davinci_sketch.h"
#include "workload/trace.h"

namespace {

using davinci::DaVinciSketch;

std::vector<uint32_t> ReadTrace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open trace %s\n", path.c_str());
    std::exit(1);
  }
  in.seekg(0, std::ios::end);
  size_t bytes = static_cast<size_t>(in.tellg());
  in.seekg(0);
  std::vector<uint32_t> keys(bytes / sizeof(uint32_t));
  in.read(reinterpret_cast<char*>(keys.data()),
          static_cast<std::streamsize>(keys.size() * sizeof(uint32_t)));
  return keys;
}

DaVinciSketch LoadSketch(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DaVinciSketch sketch(1024, 0);
  if (!in || !DaVinciSketch::Load(in, &sketch)) {
    std::fprintf(stderr, "cannot load sketch %s\n", path.c_str());
    std::exit(1);
  }
  return sketch;
}

void SaveSketch(const DaVinciSketch& sketch, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  sketch.Save(out);
  if (!out) {
    std::fprintf(stderr, "cannot write sketch %s\n", path.c_str());
    std::exit(1);
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: davinci_cli "
               "{gen|build|query|report|merge|diff|join} ...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];

  if (command == "gen") {
    if (argc < 3) return Usage();
    size_t packets = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1000000;
    size_t flows = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 100000;
    double skew = argc > 5 ? std::atof(argv[5]) : 1.05;
    davinci::Trace trace =
        davinci::BuildSkewedTrace("cli", packets, flows, skew, 42);
    std::ofstream out(argv[2], std::ios::binary);
    out.write(reinterpret_cast<const char*>(trace.keys.data()),
              static_cast<std::streamsize>(trace.keys.size() *
                                           sizeof(uint32_t)));
    std::printf("wrote %zu packets over %zu flows to %s\n",
                trace.keys.size(), flows, argv[2]);
    return 0;
  }

  if (command == "build") {
    if (argc < 4) return Usage();
    size_t memory_kb = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 400;
    std::vector<uint32_t> keys = ReadTrace(argv[2]);
    DaVinciSketch sketch(memory_kb * 1024, /*seed=*/1);
    for (uint32_t key : keys) sketch.Insert(key, 1);
    SaveSketch(sketch, argv[3]);
    std::printf("encoded %zu packets into %zu KB at %s\n", keys.size(),
                sketch.MemoryBytes() / 1024, argv[3]);
    return 0;
  }

  if (command == "query") {
    if (argc < 4) return Usage();
    DaVinciSketch sketch = LoadSketch(argv[2]);
    uint32_t key = static_cast<uint32_t>(std::strtoul(argv[3], nullptr, 0));
    std::printf("%lld\n", static_cast<long long>(sketch.Query(key)));
    return 0;
  }

  if (command == "report") {
    if (argc < 3) return Usage();
    DaVinciSketch sketch = LoadSketch(argv[2]);
    int64_t threshold =
        argc > 3 ? std::strtoll(argv[3], nullptr, 10) : 1000;
    std::printf("memory_bytes=%zu\n", sketch.MemoryBytes());
    std::printf("cardinality=%.0f\n", sketch.EstimateCardinality());
    std::printf("entropy=%.6f\n", sketch.EstimateEntropy());
    auto heavy = sketch.HeavyHitters(threshold);
    std::printf("heavy_hitters(threshold=%lld)=%zu\n",
                static_cast<long long>(threshold), heavy.size());
    for (const auto& [key, est] : heavy) {
      std::printf("  %u %lld\n", key, static_cast<long long>(est));
    }
    return 0;
  }

  if (command == "merge" || command == "diff") {
    if (argc < 5) return Usage();
    DaVinciSketch a = LoadSketch(argv[2]);
    DaVinciSketch b = LoadSketch(argv[3]);
    if (command == "merge") {
      a.Merge(b);
    } else {
      a.Subtract(b);
    }
    SaveSketch(a, argv[4]);
    std::printf("%s -> %s\n", command.c_str(), argv[4]);
    return 0;
  }

  if (command == "join") {
    if (argc < 4) return Usage();
    DaVinciSketch a = LoadSketch(argv[2]);
    DaVinciSketch b = LoadSketch(argv[3]);
    std::printf("%.6g\n", DaVinciSketch::InnerProduct(a, b));
    return 0;
  }

  return Usage();
}
