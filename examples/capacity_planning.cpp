// Capacity planning: a network operator sizing a monitoring deployment.
// The autotuner calibrates the sketch layout on a sampled prefix, then the
// extended queries answer planning questions — top talkers, flow-size
// quantiles, and how much two links' traffic overlaps (Jaccard).

#include <cstdio>

#include "core/autotune.h"
#include "core/davinci_sketch.h"
#include "core/extended_queries.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

int main() {
  // Two links with correlated traffic (shared backbone flows).
  davinci::Trace backbone =
      davinci::BuildSkewedTrace("backbone", 600000, 60000, 1.1, 314);
  size_t n = backbone.keys.size();
  davinci::Trace link_a = davinci::Slice(backbone, 0, 2 * n / 3, "linkA");
  davinci::Trace link_b = davinci::Slice(backbone, n / 3, n, "linkB");

  // Step 1: autotune on the first 10% of link A.
  std::vector<uint32_t> sample(link_a.keys.begin(),
                               link_a.keys.begin() + link_a.keys.size() / 10);
  davinci::AutotuneResult tuned =
      davinci::AutotuneConfig(sample, 300 * 1024, 1);
  std::printf("autotuned 300 KB layout: FP %zu buckets, EF %zu KB, "
              "IFP %zux%zu, T=%lld (sample ARE %.4f)\n",
              tuned.config.fp_buckets, tuned.config.ef_bytes / 1024,
              tuned.config.ifp_rows, tuned.config.ifp_buckets_per_row,
              static_cast<long long>(tuned.config.promotion_threshold),
              tuned.sample_are);

  // Step 2: deploy one tuned sketch per link.
  davinci::DaVinciSketch a(tuned.config), b(tuned.config);
  for (uint32_t key : link_a.keys) a.Insert(key, 1);
  for (uint32_t key : link_b.keys) b.Insert(key, 1);

  // Step 3: planning queries.
  std::printf("\nlink A: ~%.0f flows; link B: ~%.0f flows\n",
              a.EstimateCardinality(), b.EstimateCardinality());

  std::printf("\ntop talkers on link A:\n");
  for (const auto& [key, est] : davinci::TopK(a, 5)) {
    std::printf("  flow %08x  ~%lld packets\n", key,
                static_cast<long long>(est));
  }

  std::printf("\nflow-size quantiles on link A: p50=%lld p90=%lld p99=%lld\n",
              static_cast<long long>(davinci::FlowSizeQuantile(a, 0.5)),
              static_cast<long long>(davinci::FlowSizeQuantile(a, 0.9)),
              static_cast<long long>(davinci::FlowSizeQuantile(a, 0.99)));

  double shared = davinci::EstimateIntersectionCardinality(a, b);
  double jaccard = davinci::EstimateJaccard(a, b);
  std::printf("\nshared flows between links: ~%.0f (Jaccard %.3f)\n", shared,
              jaccard);

  double truth_jaccard = [&] {
    davinci::GroundTruth ta(link_a.keys), tb(link_b.keys);
    double inter = 0;
    for (const auto& [key, f] : ta.frequencies()) {
      (void)f;
      if (tb.frequencies().count(key)) inter += 1;
    }
    double uni = static_cast<double>(ta.cardinality()) +
                 static_cast<double>(tb.cardinality()) - inter;
    return inter / uni;
  }();
  std::printf("(exact Jaccard for reference: %.3f)\n", truth_jaccard);
  return 0;
}
